#include "ft/steane_recovery.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "ft/gadget_runner.h"
#include "ft/steane_circuits.h"
#include "ft/steane_layout.h"

namespace ftqc::ft {

namespace {
using steane_layout::kAll;
using steane_layout::kAncA;
using steane_layout::kAncB;
using steane_layout::kData;
using steane_layout::kDataAndA;
}  // namespace

SteaneRecovery::SteaneRecovery(const sim::NoiseParams& noise,
                               RecoveryPolicy policy, uint64_t seed)
    : frame_(kNumQubits, seed),
      noise_(noise),
      policy_(policy),
      stochastic_(noise),
      injector_(&stochastic_) {}

void SteaneRecovery::reset() { frame_.clear(); }

void SteaneRecovery::set_injector(NoiseInjector* injector) {
  injector_ = injector != nullptr ? injector : &stochastic_;
}

void SteaneRecovery::inject_data(uint32_t q, char pauli) {
  FTQC_CHECK(q < 7, "data qubit index out of range");
  switch (pauli) {
    case 'X': frame_.inject_x(q); break;
    case 'Y': frame_.inject_y(q); break;
    case 'Z': frame_.inject_z(q); break;
    default: FTQC_CHECK(false, "inject_data expects X, Y or Z");
  }
}

void SteaneRecovery::apply_memory_noise(double p) {
  for (uint32_t q : kData) frame_.depolarize1(q, p);
}

void SteaneRecovery::prepare_verified_zero_ancilla() {
  // Fresh |0>_code on the syndrome ancilla.
  run_gadget(frame_, steane_zero_prep(kAncA), *injector_, kDataAndA);
  if (!policy_.verify_ancilla) return;

  // §3.3: compare against freshly encoded blocks; equal nontrivial readings
  // trigger a logical flip of the ancilla, a conflicted pair is left alone.
  int votes_one = 0;
  int rounds = 0;
  for (int round = 0; round < policy_.verification_rounds; ++round) {
    run_gadget(frame_, steane_zero_prep(kAncB), *injector_, kAll);
    run_gadget(frame_, transversal_cx(kAncA, kAncB), *injector_, kAll);
    const auto flips =
        run_gadget(frame_, destructive_measure(kAncB), *injector_, kAll);
    gf2::BitVec word(7);
    for (size_t q = 0; q < 7; ++q) word.set(q, flips[q] != 0);
    votes_one += hamming_.decode_logical(word) ? 1 : 0;
    ++rounds;
    for (uint32_t q : kAncB) frame_.reset(q);
  }
  if (votes_one == rounds && rounds > 0) {
    // Confident the ancilla is (logically) flipped: apply the bitwise fix.
    // Three NOTs on the logical-X support suffice (§4.1 footnote f).
    sim::Circuit fix;
    for (uint32_t q : {kAncA[0], kAncA[1], kAncA[2]}) fix.x(q);
    fix.tick();
    run_gadget(frame_, fix, *injector_, kDataAndA);
    frame_.inject_x(kAncA[0]);
    frame_.inject_x(kAncA[1]);
    frame_.inject_x(kAncA[2]);
  }
}

gf2::BitVec SteaneRecovery::extract_syndrome(bool phase_type) {
  prepare_verified_zero_ancilla();
  const auto flips =
      run_gadget(frame_, steane_syndrome_gadget(phase_type, kData, kAncA),
                 *injector_, kDataAndA);
  for (uint32_t q : kAncA) frame_.reset(q);
  return hamming_syndrome_of_flips(hamming_, flips.data());
}

void SteaneRecovery::correct(bool phase_type, const gf2::BitVec& syndrome) {
  const size_t pos = hamming_.error_position(syndrome);
  if (pos >= 7) return;
  // The correction is a real gate: it costs one fault opportunity, and it
  // shifts the reference (the noiseless run never applies corrections).
  sim::Circuit fix;
  if (phase_type) {
    fix.z(kData[pos]);
  } else {
    fix.x(kData[pos]);
  }
  fix.tick();
  run_gadget(frame_, fix, *injector_, kData);
  if (phase_type) {
    frame_.inject_z(kData[pos]);
  } else {
    frame_.inject_x(kData[pos]);
  }
}

void SteaneRecovery::run_cycle() {
  for (const bool phase_type : {false, true}) {
    const gf2::BitVec syndrome = extract_syndrome(phase_type);
    if (!syndrome.any()) continue;  // trivial: take no action (§3.4)
    if (policy_.repeat_nontrivial_syndrome) {
      const gf2::BitVec again = extract_syndrome(phase_type);
      // Act only when the repeat agrees; a conflict defers to the next cycle.
      if (again == syndrome) correct(phase_type, syndrome);
    } else {
      correct(phase_type, syndrome);
    }
  }
}

bool SteaneRecovery::logical_x_error() const {
  gf2::BitVec word(7);
  for (size_t q = 0; q < 7; ++q) word.set(q, frame_.x_frame().get(q));
  return hamming_.decode_logical(word);
}

bool SteaneRecovery::logical_z_error() const {
  gf2::BitVec word(7);
  for (size_t q = 0; q < 7; ++q) word.set(q, frame_.z_frame().get(q));
  return hamming_.decode_logical(word);
}

size_t SteaneRecovery::residual_x_weight() const {
  size_t w = 0;
  for (size_t q = 0; q < 7; ++q) w += frame_.x_frame().get(q);
  return w;
}

size_t SteaneRecovery::residual_z_weight() const {
  size_t w = 0;
  for (size_t q = 0; q < 7; ++q) w += frame_.z_frame().get(q);
  return w;
}

namespace {
// Minimum weight of `word` xored with any even Hamming codeword (the
// stabilizer supports of the self-dual Steane code).
size_t coset_weight(const gf2::Hamming743& hamming, const gf2::BitVec& word) {
  size_t best = 8;
  for (uint8_t stab : hamming.even_codewords()) {
    size_t w = 0;
    for (size_t q = 0; q < 7; ++q) w += word.get(q) ^ ((stab >> q) & 1u);
    best = std::min(best, w);
  }
  return best;
}
}  // namespace

size_t SteaneRecovery::residual_x_coset_weight() const {
  gf2::BitVec word(7);
  for (size_t q = 0; q < 7; ++q) word.set(q, frame_.x_frame().get(q));
  return coset_weight(hamming_, word);
}

size_t SteaneRecovery::residual_z_coset_weight() const {
  gf2::BitVec word(7);
  for (size_t q = 0; q < 7; ++q) word.set(q, frame_.z_frame().get(q));
  return coset_weight(hamming_, word);
}

}  // namespace ftqc::ft
