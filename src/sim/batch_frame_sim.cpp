#include "sim/batch_frame_sim.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ftqc::sim {

BatchFrameSim::BatchFrameSim(size_t num_qubits, size_t shots, uint64_t seed)
    : n_(num_qubits),
      shots_((shots + 63) & ~size_t{63}),
      words_(shots_ / 64),
      frames_(2 * num_qubits * words_, 0),
      rng_(seed) {}

void BatchFrameSim::clear() { std::fill(frames_.begin(), frames_.end(), 0); }

void BatchFrameSim::apply_h(size_t q) {
  uint64_t* xs = x_word(q);
  uint64_t* zs = z_word(q);
  for (size_t w = 0; w < words_; ++w) std::swap(xs[w], zs[w]);
}

void BatchFrameSim::apply_s(size_t q) {
  const uint64_t* xs = x_word(q);
  uint64_t* zs = z_word(q);
  for (size_t w = 0; w < words_; ++w) zs[w] ^= xs[w];
}

void BatchFrameSim::apply_cx(size_t control, size_t target) {
  const uint64_t* xc = x_word(control);
  uint64_t* xt = x_word(target);
  uint64_t* zc = z_word(control);
  const uint64_t* zt = z_word(target);
  for (size_t w = 0; w < words_; ++w) {
    xt[w] ^= xc[w];
    zc[w] ^= zt[w];
  }
}

void BatchFrameSim::apply_cz(size_t a, size_t b) {
  const uint64_t* xa = x_word(a);
  const uint64_t* xb = x_word(b);
  uint64_t* za = z_word(a);
  uint64_t* zb = z_word(b);
  for (size_t w = 0; w < words_; ++w) {
    zb[w] ^= xa[w];
    za[w] ^= xb[w];
  }
}

uint64_t BatchFrameSim::random_mask(double p) {
  if (p <= 0) return 0;
  if (p >= 1) return ~uint64_t{0};
  // Sample the set-bit count's positions via geometric skipping: for the
  // small p of this library (1e-5..1e-2) this touches ~64*p bits on average
  // instead of generating 64 bernoullis.
  uint64_t mask = 0;
  const double log1mp = std::log1p(-p);
  double position = std::floor(std::log1p(-rng_.next_double()) / log1mp);
  while (position < 64) {
    mask |= uint64_t{1} << static_cast<int>(position);
    position += 1 + std::floor(std::log1p(-rng_.next_double()) / log1mp);
  }
  return mask;
}

void BatchFrameSim::depolarize1(size_t q, double p) {
  uint64_t* xs = x_word(q);
  uint64_t* zs = z_word(q);
  for (size_t w = 0; w < words_; ++w) {
    uint64_t hit = random_mask(p);
    if (hit == 0) continue;
    // Hit lanes are sparse at this library's error rates, so picking the
    // X/Y/Z flavor per lane keeps the three exactly equiprobable.
    while (hit != 0) {
      const int lane = __builtin_ctzll(hit);
      hit &= hit - 1;
      const uint64_t bit = uint64_t{1} << lane;
      switch (rng_.next_below(3)) {
        case 0: xs[w] ^= bit; break;
        case 1: xs[w] ^= bit; zs[w] ^= bit; break;
        default: zs[w] ^= bit; break;
      }
    }
  }
}

void BatchFrameSim::depolarize2(size_t a, size_t b, double p) {
  uint64_t* xa = x_word(a);
  uint64_t* za = z_word(a);
  uint64_t* xb = x_word(b);
  uint64_t* zb = z_word(b);
  for (size_t w = 0; w < words_; ++w) {
    uint64_t hit = random_mask(p);
    if (hit == 0) continue;
    // Per hit lane pick one of 15 non-identity 2-qubit Paulis. The lanes are
    // sparse at our error rates, so a per-bit loop is fine here.
    while (hit != 0) {
      const int lane = __builtin_ctzll(hit);
      hit &= hit - 1;
      const uint64_t which = rng_.next_below(15) + 1;
      const uint64_t bit = uint64_t{1} << lane;
      if (which & 1) xa[w] ^= bit;
      if (which & 2) za[w] ^= bit;
      if (which & 4) xb[w] ^= bit;
      if (which & 8) zb[w] ^= bit;
    }
  }
}

void BatchFrameSim::x_error(size_t q, double p) {
  uint64_t* xs = x_word(q);
  for (size_t w = 0; w < words_; ++w) xs[w] ^= random_mask(p);
}

void BatchFrameSim::y_error(size_t q, double p) {
  uint64_t* xs = x_word(q);
  uint64_t* zs = z_word(q);
  for (size_t w = 0; w < words_; ++w) {
    const uint64_t mask = random_mask(p);
    xs[w] ^= mask;
    zs[w] ^= mask;
  }
}

void BatchFrameSim::z_error(size_t q, double p) {
  uint64_t* zs = z_word(q);
  for (size_t w = 0; w < words_; ++w) zs[w] ^= random_mask(p);
}

void BatchFrameSim::run(const Circuit& circuit) {
  FTQC_CHECK(circuit.num_qubits() <= n_, "circuit larger than frame register");
  for (const Operation& op : circuit.ops()) {
    switch (op.gate) {
      case Gate::I:
      case Gate::TICK:
      case Gate::M:
      case Gate::MX:
        break;  // measurements: read flips via x_flip()/z_flip() afterwards
      case Gate::X:
      case Gate::Y:
      case Gate::Z:
        break;  // deterministic Paulis shift the reference, not the frame
      case Gate::H: apply_h(op.targets[0]); break;
      case Gate::S:
      case Gate::S_DAG: apply_s(op.targets[0]); break;
      case Gate::CX: apply_cx(op.targets[0], op.targets[1]); break;
      case Gate::CZ: apply_cz(op.targets[0], op.targets[1]); break;
      case Gate::SWAP: {
        apply_cx(op.targets[0], op.targets[1]);
        apply_cx(op.targets[1], op.targets[0]);
        apply_cx(op.targets[0], op.targets[1]);
        break;
      }
      case Gate::DEPOLARIZE1: depolarize1(op.targets[0], op.arg); break;
      case Gate::DEPOLARIZE2:
        depolarize2(op.targets[0], op.targets[1], op.arg);
        break;
      case Gate::X_ERROR: x_error(op.targets[0], op.arg); break;
      case Gate::Y_ERROR: y_error(op.targets[0], op.arg); break;
      case Gate::Z_ERROR: z_error(op.targets[0], op.arg); break;
      // Injections flip (not set) the frame, matching FrameSim::inject_*:
      // two injections of the same Pauli cancel.
      case Gate::INJECT_X: {
        uint64_t* xs = x_word(op.targets[0]);
        for (size_t w = 0; w < words_; ++w) xs[w] ^= ~uint64_t{0};
        break;
      }
      case Gate::INJECT_Y: {
        uint64_t* xs = x_word(op.targets[0]);
        uint64_t* zs = z_word(op.targets[0]);
        for (size_t w = 0; w < words_; ++w) {
          xs[w] ^= ~uint64_t{0};
          zs[w] ^= ~uint64_t{0};
        }
        break;
      }
      case Gate::INJECT_Z: {
        uint64_t* zs = z_word(op.targets[0]);
        for (size_t w = 0; w < words_; ++w) zs[w] ^= ~uint64_t{0};
        break;
      }
      default:
        FTQC_CHECK(false, std::string("BatchFrameSim cannot run gate ") +
                              gate_name(op.gate));
    }
  }
}

}  // namespace ftqc::sim
