// E10 (§6, Fig. 15): leakage errors. The detection circuit reads 1 for a
// healthy qubit and 0 for a leaked one; leaked qubits are replaced by fresh
// |0>'s and handed to conventional error correction. Without detection, a
// leaked data qubit silently corrupts every subsequent gate.
#include <array>
#include <cstdio>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table.h"
#include "ft/gadget_runner.h"
#include "ft/noise_injector.h"
#include "ft/steane_circuits.h"
#include "ft/steane_recovery.h"
#include "sim/frame_sim.h"
#include "sim/shot_runner.h"

namespace {

using namespace ftqc;
using namespace ftqc::ft;

struct LeakStats {
  Proportion leaked;
  Proportion detected_given_leaked;
  Proportion false_alarm;
};

// Leakage is a per-qubit classical mark the bit-parallel engine cannot
// carry, so both loops here run the serial frame engine via ShotRunner.
// Event bits: 0 = leaked, 1 = leaked AND flagged, 2 = healthy AND flagged.
LeakStats run(double p_leak, double eps_meas, size_t shots, uint64_t seed) {
  sim::NoiseParams noise;
  noise.eps_meas = eps_meas;
  const sim::Circuit detect = leak_detection(0, 1);

  sim::ShotPlan plan;
  plan.shots = shots;
  plan.seed = seed;
  const sim::ShotRunner runner(plan);
  const auto result = runner.run([&](uint64_t shot_seed) -> uint32_t {
    sim::FrameSim frame(2, shot_seed);
    frame.leak_error(0, p_leak);
    const bool is_leaked = frame.is_leaked(0);
    StochasticInjector injector(noise);
    const std::array<uint32_t, 2> active = {0, 1};
    const auto record = run_gadget(frame, detect, injector, active);
    // Reference outcome is 1 for healthy data. A leaked qubit freezes both
    // XORs, so the physical outcome is 0; in flip space: healthy -> flip
    // record, leaked -> outcome 0 means flip relative to the healthy
    // reference. The driver reconstructs the actual outcome:
    const bool outcome = (is_leaked ? false : true) ^ (record[0] != 0);
    const bool flagged = !outcome;
    uint32_t events = is_leaked ? 1u : 0u;
    if (is_leaked && flagged) events |= 2u;
    if (!is_leaked && flagged) events |= 4u;
    return events;
  });

  LeakStats stats;
  stats.leaked = result.proportion(0);
  stats.detected_given_leaked =
      Proportion{result.counts[1], result.counts[0]};
  stats.false_alarm =
      Proportion{result.counts[2], result.trials - result.counts[0]};
  return stats;
}

// Multi-cycle memory with per-cycle data leakage. With detection (§6,
// Fig. 15 run at the lowest coding level each cycle), leaked qubits are
// replaced by fresh |0>'s — at worst one erasure-like defect per event —
// and the memory keeps its O(eps²) behavior. Ignored leakage persists: the
// dead qubit absorbs every later gate, its syndrome information is garbage,
// and errors accumulate on it unchecked.
double recovery_failure(double p_leak, bool detect_and_replace, size_t shots,
                        uint64_t seed) {
  const auto noise = sim::NoiseParams::uniform_gate(3e-4);
  const int cycles = 5;
  sim::ShotPlan plan;
  plan.shots = shots;
  plan.seed = seed;
  const sim::ShotRunner runner(plan);
  const auto result = runner.run([&](uint64_t shot_seed) {
    SteaneRecovery rec(noise, RecoveryPolicy{}, shot_seed);
    for (int c = 0; c < cycles; ++c) {
      for (uint32_t q = 0; q < 7; ++q) rec.frame().leak_error(q, p_leak);
      if (detect_and_replace) {
        // Fig. 15 interrogation at the top of each cycle: replace leaked
        // qubits with fresh |0>'s; the replacement rejoins the block with a
        // defect that THIS cycle's ordinary error correction then repairs.
        for (uint32_t q = 0; q < 7; ++q) {
          if (rec.frame().is_leaked(q)) {
            rec.frame().reset(q);
            if (rec.frame().rng().next_u64() & 1) rec.frame().inject_x(q);
            if (rec.frame().rng().next_u64() & 1) rec.frame().inject_z(q);
          }
        }
      }
      rec.apply_memory_noise(3e-4);
      rec.run_cycle();
    }
    // Score any still-leaked qubit as a random Pauli (its state is lost).
    for (uint32_t q = 0; q < 7; ++q) {
      if (rec.frame().is_leaked(q)) {
        rec.frame().reset(q);
        if (rec.frame().rng().next_u64() & 1) rec.frame().inject_x(q);
        if (rec.frame().rng().next_u64() & 1) rec.frame().inject_z(q);
      }
    }
    return rec.any_logical_error();
  });
  return result.failure_rate();
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E10");
  std::printf(
      "E10: leakage detection (Fig. 15) and replacement (§6).\n\n");
  const size_t detect_shots = ftqc::bench::scaled(200000, 5000);
  const size_t recovery_shots = ftqc::bench::scaled(40000, 300);
  ftqc::bench::JsonResult json;
  ftqc::Table table({"p_leak", "P(leaked)", "P(detect | leaked)",
                     "P(false alarm)"});
  for (const double p : {0.05, 0.01, 0.002}) {
    const auto stats = run(p, 1e-3, detect_shots, 3);
    table.add_row({ftqc::strfmt("%.3g", p),
                   ftqc::strfmt("%.4f", stats.leaked.mean()),
                   ftqc::strfmt("%.4f", stats.detected_given_leaked.mean()),
                   ftqc::strfmt("%.2e", stats.false_alarm.mean())});
    if (p == 0.01) {
      json.add("p_detect_given_leaked", stats.detected_given_leaked.mean());
      json.add("p_false_alarm", stats.false_alarm.mean());
    }
  }
  table.print();

  std::printf("\nRecovery with vs without leak replacement (gate eps = 3e-4, 5 cycles):\n");
  ftqc::Table rec({"p_leak", "P(logical) ignored", "P(logical) replaced"});
  for (const double p : {0.01, 0.003, 0.001}) {
    const double ignored = recovery_failure(p, false, recovery_shots, 11);
    const double replaced = recovery_failure(p, true, recovery_shots, 13);
    rec.add_row({ftqc::strfmt("%.3g", p), ftqc::strfmt("%.3e", ignored),
                 ftqc::strfmt("%.3e", replaced)});
    if (p == 0.003) {
      json.add("p_logical_ignored", ignored);
      json.add("p_logical_replaced", replaced);
    }
  }
  rec.print();
  json.add("detect_shots", detect_shots);
  json.add("recovery_shots", recovery_shots);
  json.write();
  std::printf(
      "\nShape check: detection is near-perfect (limited only by measurement\n"
      "error), false alarms are O(eps_meas), and replacing leaked qubits\n"
      "restores the quadratic logical-failure scaling (§6: 'allowing leakage\n"
      "errors does not have much effect on the accuracy threshold').\n");
  return 0;
}
