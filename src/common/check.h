#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

// Always-on runtime invariant check. Simulation correctness bugs silently
// corrupt statistics, so checks stay enabled in release builds; the hot
// kernels use FTQC_DCHECK which compiles out under NDEBUG.
#define FTQC_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FTQC_CHECK failed at %s:%d: %s\n  %s\n",       \
                   __FILE__, __LINE__, #cond, std::string(msg).c_str());   \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define FTQC_DCHECK(cond, msg) ((void)0)
#else
#define FTQC_DCHECK(cond, msg) FTQC_CHECK(cond, msg)
#endif
