// E18 (§5): the point of concatenation, measured at circuit level — compare
// the logical failure of one fault-tolerant recovery cycle on a level-1
// Steane block against a full level-2 (49-qubit) block, across the
// pseudothreshold. Above it, the bigger code is WORSE ("coding will make
// things worse instead of better"); below it, level 2 wins and the gain
// grows as eps shrinks — the mechanism behind the accuracy threshold.
//
// The level-2 gadget runs under BOTH disciplines side by side: the bare
// "all levels simultaneously" extraction and the extended-rectangle (exRec)
// interleave of level-1 recoveries inside the level-2 ancilla preparation.
// The exhaustive fault enumeration (tests/ft_concatenated_test.cpp) shows
// why the disciplines differ at O(eps^2): the bare gadget's malignant
// pairs put one fault in each of the two ancilla preparations.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table.h"
#include "ft/concatenated_recovery.h"
#include "ft/steane_recovery.h"
#include "sim/shot_runner.h"
#include "threshold/pseudothreshold.h"

namespace {

using namespace ftqc;
using namespace ftqc::ft;

// Level 1 is exactly the pseudothreshold cycle measurement, so it rides the
// shared ShotRunner path and its engine parameter (batch by default: the
// level-1 curve is the shot-hungry side of this comparison).
Proportion level1_failure(double eps, size_t shots, uint64_t seed,
                          sim::ShotEngine engine) {
  return threshold::measure_cycle_failure(threshold::RecoveryMethod::kSteane,
                                          eps, shots, seed, 0.0, engine)
      .failures;
}

// The 49-qubit level-2 gadget stays serial per shot (its recovery drivers
// are frame-native and branch per shot); ShotRunner still parallelizes.
Proportion level2_failure(double eps, size_t shots, uint64_t seed,
                          Level2Discipline discipline) {
  const auto noise = sim::NoiseParams::uniform_gate(eps);
  RecoveryPolicy policy;
  policy.level2_discipline = discipline;
  sim::ShotPlan plan;
  plan.shots = shots;
  plan.seed = seed;
  plan.seed_stride = 11;
  const sim::ShotRunner runner(plan);
  const auto result = runner.run([&](uint64_t shot_seed) {
    Level2Recovery rec(noise, policy, shot_seed);
    rec.run_cycle();
    return rec.any_logical_error();
  });
  return result.proportion();
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E18",
                    {sim::ShotEngine::kFrame, sim::ShotEngine::kBatch});
  const sim::ShotEngine engine =
      ftqc::bench::engine_or(sim::ShotEngine::kBatch);
  std::printf(
      "E18: level-1 vs level-2 concatenated recovery, full circuit level.\n"
      "One FT recovery cycle per level; failure after ideal decode. The\n"
      "level-2 gadget runs both disciplines: bare subblocks vs the\n"
      "extended-rectangle (exRec) interleave of level-1 recoveries.\n"
      "[level-1 engine: %s]\n\n",
      sim::shot_engine_name(engine));
  ftqc::Table table({"eps", "level-1 P(fail)", "L2 bare", "L2 exRec",
                     "bare/L1", "exRec/L1", "exRec gain"});
  struct Point {
    double eps;
    size_t shots;
  };
  // Smoke mode divides shot counts by 100 (and still exercises both levels
  // and both disciplines).
  const size_t div = ftqc::bench::smoke() ? 100 : 1;
  ftqc::bench::JsonResult json;
  std::vector<double> grid, bare_ratio, exrec_ratio;
  for (const Point pt : {Point{4e-3, 20000}, Point{2e-3, 20000},
                         Point{1e-3, 30000}, Point{5e-4, 40000},
                         Point{2.5e-4, 40000}}) {
    const auto l1 = level1_failure(pt.eps, pt.shots / div, 1000, engine);
    const auto bare = level2_failure(pt.eps, pt.shots / div / 4, 2000,
                                     Level2Discipline::kBare);
    const auto exrec = level2_failure(pt.eps, pt.shots / div / 4, 2000,
                                      Level2Discipline::kExRec);
    const double f1 = l1.mean();
    const double fb = bare.mean();
    const double fx = exrec.mean();
    grid.push_back(pt.eps);
    bare_ratio.push_back(f1 > 0 && fb > 0 ? fb / f1 : 0.0);
    exrec_ratio.push_back(f1 > 0 && fx > 0 ? fx / f1 : 0.0);
    table.add_row({ftqc::strfmt("%.2e", pt.eps), ftqc::strfmt("%.3e", f1),
                   ftqc::strfmt("%.3e", fb), ftqc::strfmt("%.3e", fx),
                   ftqc::strfmt("%.2f", bare_ratio.back()),
                   ftqc::strfmt("%.2f", exrec_ratio.back()),
                   ftqc::strfmt("%.2fx", fx > 0 ? fb / fx : -1.0)});
    if (pt.eps == 1e-3) {
      json.add("eps", pt.eps);
      json.add("level1_failure", f1);
      json.add("level2_failure", fb);  // historical name: bare discipline
      json.add("level2_exrec_failure", fx);
      if (fx > 0) json.add("exrec_gain", fb / fx);
    }
  }
  table.print();
  // Log-log extrapolation of the level-2/level-1 failure ratio to ratio = 1:
  // the eps where each discipline's level-2 curve crosses the level-1 curve.
  const double cross_bare = ftqc::loglog_unit_crossing(grid, bare_ratio);
  const double cross_exrec = ftqc::loglog_unit_crossing(grid, exrec_ratio);
  if (cross_bare > 0) json.add("crossover_bare", cross_bare);
  if (cross_exrec > 0) json.add("crossover_exrec", cross_exrec);
  json.write();
  if (cross_bare > 0 || cross_exrec > 0) {
    std::printf(
        "\nExtrapolated level-2-beats-level-1 crossover (ratio->1, log-log):\n"
        "  bare  : eps ~ %.1e\n"
        "  exRec : eps ~ %.1e   (paper's Eq. 34 threshold estimate ~ 6e-4)\n",
        cross_bare, cross_exrec);
  }
  std::printf(
      "\nShape check: both level-2 curves are steeper than level 1. Below\n"
      "the pseudothreshold the exRec curve sits well under the bare one:\n"
      "interleaving level-1 recoveries inside the level-2 ancilla\n"
      "preparation removes the cross-extraction malignant pairs (one\n"
      "transversal-XOR fault in EACH ancilla prep) that inflate the bare\n"
      "gadget's O(eps^2) constant, so the measured crossover moves up\n"
      "toward the paper's Eq. 34 estimate — at full shot counts exRec\n"
      "level 2 already beats level 1 at eps = 5e-4, where the bare gadget\n"
      "still loses by 5x. Above the pseudothreshold the interleave's extra\n"
      "hardware costs more than it saves (exRec gain < 1 at 4e-3), exactly\n"
      "the paper's \"coding makes things worse\" regime. The qualitative §5\n"
      "mechanism — the bigger code's failure curve is steeper, so below a\n"
      "critical eps each added level helps — is what the falling ratio\n"
      "columns demonstrate.\n");
  return 0;
}
