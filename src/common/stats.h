#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace ftqc {

// Binomial proportion estimate with a Wilson-score interval. Threshold
// experiments report logical failure rates; the interval lets benches flag
// statistically meaningless comparisons.
struct Proportion {
  uint64_t successes = 0;
  uint64_t trials = 0;

  [[nodiscard]] double mean() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) / static_cast<double>(trials);
  }

  // Half-width of the 95% Wilson interval around the Wilson midpoint.
  [[nodiscard]] double wilson_halfwidth() const {
    if (trials == 0) return 1.0;
    constexpr double z = 1.959963984540054;  // 97.5th normal percentile
    const double n = static_cast<double>(trials);
    const double p = mean();
    const double denom = 1.0 + z * z / n;
    return (z / denom) * std::sqrt(p * (1 - p) / n + z * z / (4 * n * n));
  }

  [[nodiscard]] double wilson_center() const {
    if (trials == 0) return 0.5;
    constexpr double z = 1.959963984540054;
    const double n = static_cast<double>(trials);
    const double p = mean();
    return (p + z * z / (2 * n)) / (1.0 + z * z / n);
  }
};

// Log-log least-squares extrapolation of a failure-ratio curve to ratio = 1:
// the threshold benches (E14, E18) fit ln(ratio) against ln(x) over the
// points where both curves resolved (ratio > 0) and solve for the x at which
// the bigger code stops helping. Returns 0 when fewer than two points are
// usable or the fitted slope is non-positive (no crossing in range).
[[nodiscard]] inline double loglog_unit_crossing(
    const std::vector<double>& xs, const std::vector<double>& ratios) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  size_t n = 0;
  for (size_t i = 0; i < xs.size() && i < ratios.size(); ++i) {
    if (ratios[i] <= 0 || xs[i] <= 0) continue;
    const double x = std::log(xs[i]);
    const double y = std::log(ratios[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0) return 0.0;
  const double slope = (static_cast<double>(n) * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / static_cast<double>(n);
  if (slope <= 0) return 0.0;
  return std::exp(-intercept / slope);
}

}  // namespace ftqc
