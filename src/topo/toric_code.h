#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "gf2/bitvec.h"
#include "pauli/pauli_string.h"
#include "sim/tableau_sim.h"

namespace ftqc::topo {

// Kitaev's Z2 spin model on an L×L torus (§7.2, Fig. 17): spins on the
// lattice links, commuting four-body check operators on sites (stars, X
// type — "Gauss's law") and plaquettes (Z type — "magnetic flux"). Violated
// stars host electric quasiparticles, violated plaquettes magnetic fluxons;
// the two logical qubits live in the homology of the torus.
//
// Edge layout: horizontal edge h(x,y) leaves vertex (x,y) in +x, vertical
// edge v(x,y) leaves it in +y; indices are 2(yL+x) and 2(yL+x)+1.
class ToricCode {
 public:
  explicit ToricCode(size_t lattice_size);

  [[nodiscard]] size_t lattice() const { return l_; }
  [[nodiscard]] size_t num_qubits() const { return 2 * l_ * l_; }
  [[nodiscard]] size_t num_plaquettes() const { return l_ * l_; }
  [[nodiscard]] size_t num_vertices() const { return l_ * l_; }

  [[nodiscard]] uint32_t h_edge(size_t x, size_t y) const;
  [[nodiscard]] uint32_t v_edge(size_t x, size_t y) const;

  // Check operators as Pauli strings on the 2L² qubits.
  [[nodiscard]] pauli::PauliString star_operator(size_t x, size_t y) const;
  [[nodiscard]] pauli::PauliString plaquette_operator(size_t x, size_t y) const;
  // Homologically nontrivial Z loops (the logical Z's for the two encoded
  // qubits): a horizontal row of h-edges and a vertical column of v-edges.
  [[nodiscard]] pauli::PauliString logical_z1() const;
  [[nodiscard]] pauli::PauliString logical_z2() const;
  [[nodiscard]] pauli::PauliString logical_x1() const;
  [[nodiscard]] pauli::PauliString logical_x2() const;

  // Syndrome of an X-error pattern: bit p = 1 iff plaquette p is violated
  // (hosts a magnetic fluxon).
  [[nodiscard]] gf2::BitVec plaquette_syndrome(const gf2::BitVec& x_errors) const;
  // Syndrome of a Z-error pattern on the stars (electric charges).
  [[nodiscard]] gf2::BitVec star_syndrome(const gf2::BitVec& z_errors) const;
  // Allocation-free variants writing into a caller-owned buffer (resized to
  // L² if needed) — the inner loop of multi-round memory experiments.
  void plaquette_syndrome_into(const gf2::BitVec& x_errors,
                               gf2::BitVec& syndrome) const;
  void star_syndrome_into(const gf2::BitVec& z_errors,
                          gf2::BitVec& syndrome) const;

  // For a syndrome-free residual X pattern: which of the two logical qubits
  // suffered an X flip (odd overlap with the corresponding Z loop).
  [[nodiscard]] std::pair<bool, bool> logical_x_flips(
      const gf2::BitVec& residual_x) const;
  // Dual question for a residual Z pattern (odd overlap with the X loops).
  [[nodiscard]] std::pair<bool, bool> logical_z_flips(
      const gf2::BitVec& residual_z) const;

  // Convenience decoders: greedy minimum-distance matching through the
  // src/decode subsystem (decode::ToricMatchingDecoder with GreedyMatching).
  // Benches that A/B strategies — greedy vs exact MWPM vs 3D space-time —
  // construct decoders from src/decode directly; these wrappers keep the
  // historical one-call path (and its ~8% threshold) for casual users.
  [[nodiscard]] gf2::BitVec decode_plaquette_syndrome(
      const gf2::BitVec& syndrome) const;
  // The electric dual: matches violated stars (charge quasiparticles) and
  // returns the Z correction along primal-lattice geodesics.
  [[nodiscard]] gf2::BitVec decode_star_syndrome(
      const gf2::BitVec& syndrome) const;

  // Geometry shared with the decode subsystem. Sites are plaquette or vertex
  // indices y*L + x; the metric is the L1 torus distance (both sublattices
  // share it by translation symmetry).
  [[nodiscard]] size_t torus_site_distance(size_t a, size_t b) const;
  // Endpoints of an edge in the two site graphs the decoders walk: the two
  // plaquettes the edge borders (dual graph) and the two vertices it joins
  // (primal graph). Erasure peeling and weighted path decoding need explicit
  // incidence, not just the distance metric.
  [[nodiscard]] std::pair<size_t, size_t> edge_plaquettes(size_t edge) const;
  [[nodiscard]] std::pair<size_t, size_t> edge_vertices(size_t edge) const;
  // Dual path between plaquettes, toggling crossed edges into `correction`.
  void toggle_dual_path(size_t from, size_t to, gf2::BitVec& correction) const;
  // Primal path between vertices, toggling crossed edges (Z-string support).
  void toggle_primal_path(size_t from, size_t to, gf2::BitVec& support) const;

  // Projects a tableau state onto the code space with all checks +1 (the
  // model's ground state).
  void prepare_ground_state(sim::TableauSim& sim) const;

 private:
  [[nodiscard]] size_t plaquette_index(size_t x, size_t y) const {
    return y * l_ + x;
  }

  size_t l_;
};

}  // namespace ftqc::topo
