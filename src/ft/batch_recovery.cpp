#include "ft/batch_recovery.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "ft/steane_circuits.h"
#include "ft/steane_layout.h"

namespace ftqc::ft {

namespace {

using steane_layout::kAll;
using steane_layout::kAncA;
using steane_layout::kAncB;
using steane_layout::kData;
using steane_layout::kDataAndA;

bool any_bit(const uint64_t* mask, size_t words) {
  for (size_t w = 0; w < words; ++w) {
    if (mask[w] != 0) return true;
  }
  return false;
}

uint64_t popcount_lanes(const uint64_t* mask, size_t words, size_t num_lanes) {
  uint64_t count = 0;
  const size_t full = std::min(words, num_lanes / 64);
  for (size_t w = 0; w < full; ++w) count += __builtin_popcountll(mask[w]);
  if (full < words && num_lanes % 64 != 0) {
    const uint64_t tail = (uint64_t{1} << (num_lanes % 64)) - 1;
    count += __builtin_popcountll(mask[full] & tail);
  }
  return count;
}

}  // namespace

BatchSteaneRecovery::BatchSteaneRecovery(const sim::NoiseParams& noise,
                                         RecoveryPolicy policy, size_t shots,
                                         uint64_t seed)
    : sim_(kNumQubits, shots, seed),
      noise_(noise),
      policy_(policy),
      words_(sim_.num_words()),
      touched_(kNumQubits, false) {
  FTQC_CHECK(noise.p_leak == 0,
             "BatchSteaneRecovery cannot model leakage; use the serial "
             "SteaneRecovery for p_leak > 0");
}

void BatchSteaneRecovery::reset() { sim_.clear(); }

void BatchSteaneRecovery::inject_data(uint32_t q, char pauli) {
  FTQC_CHECK(q < 7, "data qubit index out of range");
  switch (pauli) {
    case 'X': sim_.inject_x(q); break;
    case 'Y': sim_.inject_y(q); break;
    case 'Z': sim_.inject_z(q); break;
    default: FTQC_CHECK(false, "inject_data expects X, Y or Z");
  }
}

void BatchSteaneRecovery::apply_memory_noise(double p) {
  for (uint32_t q : kData) sim_.depolarize1(q, p);
}

std::vector<size_t> BatchSteaneRecovery::run_gadget(
    const sim::Circuit& circuit, std::span<const uint32_t> active_qubits,
    const uint64_t* lane_mask) {
  using sim::Gate;
  // Row indices from earlier gadgets are consumed before the next gadget
  // runs, so the record can be dropped here to keep memory flat.
  sim_.clear_record();
  std::vector<size_t> rows;
  rows.reserve(circuit.num_measurements());
  std::fill(touched_.begin(), touched_.end(), false);

  const auto flush_storage = [&] {
    for (uint32_t q : active_qubits) {
      if (!touched_[q]) sim_.depolarize1(q, noise_.eps_store, lane_mask);
    }
    std::fill(touched_.begin(), touched_.end(), false);
  };

  for (const sim::Operation& op : circuit.ops()) {
    FTQC_CHECK(op.cond < 0, "gadget circuits cannot use feedforward");
    for (uint32_t t : op.targets) touched_[t] = true;
    switch (op.gate) {
      case Gate::TICK:
        flush_storage();
        break;
      case Gate::I:
        break;
      case Gate::X:
      case Gate::Y:
      case Gate::Z:
        // Deterministic Paulis shift the reference, not the frame, but the
        // physical gate is still a fault opportunity.
        sim_.depolarize1(op.targets[0], noise_.eps_gate1, lane_mask);
        break;
      case Gate::H:
        sim_.apply_h(op.targets[0]);
        sim_.depolarize1(op.targets[0], noise_.eps_gate1, lane_mask);
        break;
      case Gate::S:
      case Gate::S_DAG:
        sim_.apply_s(op.targets[0]);
        sim_.depolarize1(op.targets[0], noise_.eps_gate1, lane_mask);
        break;
      case Gate::CX:
        sim_.apply_cx(op.targets[0], op.targets[1]);
        sim_.depolarize2(op.targets[0], op.targets[1], noise_.eps_gate2,
                         lane_mask);
        break;
      case Gate::CZ:
        sim_.apply_cz(op.targets[0], op.targets[1]);
        sim_.depolarize2(op.targets[0], op.targets[1], noise_.eps_gate2,
                         lane_mask);
        break;
      case Gate::SWAP:
        sim_.apply_swap(op.targets[0], op.targets[1]);
        sim_.depolarize2(op.targets[0], op.targets[1], noise_.eps_gate2,
                         lane_mask);
        break;
      case Gate::M:
        sim_.x_error(op.targets[0], noise_.eps_meas, lane_mask);
        rows.push_back(sim_.measure_z(op.targets[0]));
        break;
      case Gate::MX:
        sim_.z_error(op.targets[0], noise_.eps_meas, lane_mask);
        rows.push_back(sim_.measure_x(op.targets[0]));
        break;
      case Gate::MR:
        sim_.x_error(op.targets[0], noise_.eps_meas, lane_mask);
        rows.push_back(sim_.measure_reset(op.targets[0]));
        sim_.x_error(op.targets[0], noise_.eps_prep, lane_mask);
        break;
      case Gate::R:
        sim_.reset(op.targets[0]);
        sim_.x_error(op.targets[0], noise_.eps_prep, lane_mask);
        break;
      case Gate::INJECT_X:
        sim_.inject_x(op.targets[0]);
        break;
      case Gate::INJECT_Y:
        sim_.inject_y(op.targets[0]);
        break;
      case Gate::INJECT_Z:
        sim_.inject_z(op.targets[0]);
        break;
      default:
        FTQC_CHECK(false, std::string("batch run_gadget cannot execute ") +
                              sim::gate_name(op.gate));
    }
  }
  return rows;
}

void BatchSteaneRecovery::decode_rows(const uint64_t* const rows[7],
                                      bool logical, uint64_t* out) const {
  const gf2::BitMat& h = hamming_.check_matrix();
  for (size_t w = 0; w < words_; ++w) {
    uint64_t syn[3] = {0, 0, 0};
    uint64_t parity = 0;
    for (size_t i = 0; i < 7; ++i) {
      const uint64_t r = rows[i][w];
      parity ^= r;
      for (size_t j = 0; j < 3; ++j) {
        if (h.row(j).get(i)) syn[j] ^= r;
      }
    }
    const uint64_t nonzero_syndrome = syn[0] | syn[1] | syn[2];
    // logical: decode_logical = parity(corrected word); correcting flips
    // exactly one bit iff the syndrome is nontrivial, so the corrected
    // parity is parity ^ (syndrome != 0).
    // residual: coset weight 0 means the word IS a stabilizer support — an
    // even-weight Hamming codeword, i.e. zero syndrome and even parity.
    out[w] = logical ? parity ^ nonzero_syndrome : nonzero_syndrome | parity;
  }
}

void BatchSteaneRecovery::prepare_verified_zero_ancilla(
    const uint64_t* lane_mask) {
  // Fresh |0>_code on the syndrome ancilla.
  run_gadget(steane_zero_prep(kAncA), kDataAndA, lane_mask);
  if (!policy_.verify_ancilla || policy_.verification_rounds <= 0) return;

  // §3.3: compare against freshly encoded blocks; a lane is fixed only when
  // EVERY round votes "logically flipped" (the serial votes_one == rounds).
  std::vector<uint64_t> votes(words_, ~uint64_t{0});
  for (int round = 0; round < policy_.verification_rounds; ++round) {
    run_gadget(steane_zero_prep(kAncB), kAll, lane_mask);
    run_gadget(transversal_cx(kAncA, kAncB), kAll, lane_mask);
    const auto rows =
        run_gadget(destructive_measure(kAncB), kAll, lane_mask);
    FTQC_CHECK(rows.size() == 7, "destructive measure must read 7 qubits");
    const uint64_t* flip_rows[7];
    for (size_t i = 0; i < 7; ++i) flip_rows[i] = sim_.record().row(rows[i]);
    std::vector<uint64_t> vote(words_);
    decode_rows(flip_rows, /*logical=*/true, vote.data());
    for (size_t w = 0; w < words_; ++w) votes[w] &= vote[w];
    for (uint32_t q : kAncB) sim_.reset(q);
  }
  if (lane_mask != nullptr) {
    for (size_t w = 0; w < words_; ++w) votes[w] &= lane_mask[w];
  }
  if (!any_bit(votes.data(), words_)) return;

  // Confident the ancilla is (logically) flipped: bitwise fix on the
  // logical-X support. The serial path runs a 3-NOT circuit through
  // run_gadget (gate noise on the three targets, storage on the rest of
  // kDataAndA) and then flips the frame; replay that masked per lane.
  for (size_t i = 0; i < 3; ++i) {
    sim_.depolarize1(kAncA[i], noise_.eps_gate1, votes.data());
  }
  for (uint32_t q : kData) sim_.depolarize1(q, noise_.eps_store, votes.data());
  for (size_t i = 3; i < 7; ++i) {
    sim_.depolarize1(kAncA[i], noise_.eps_store, votes.data());
  }
  for (size_t i = 0; i < 3; ++i) sim_.inject_x_masked(kAncA[i], votes.data());
}

void BatchSteaneRecovery::extract_syndrome(bool phase_type,
                                           const uint64_t* lane_mask,
                                           uint64_t* syndrome_rows) {
  prepare_verified_zero_ancilla(lane_mask);
  const auto rows = run_gadget(steane_syndrome_gadget(phase_type, kData, kAncA),
                               kDataAndA, lane_mask);
  FTQC_CHECK(rows.size() == 7, "syndrome extraction must read 7 qubits");

  const gf2::BitMat& h = hamming_.check_matrix();
  for (size_t j = 0; j < 3; ++j) {
    uint64_t* out = syndrome_rows + j * words_;
    std::fill_n(out, words_, 0);
    for (size_t i = 0; i < 7; ++i) {
      if (!h.row(j).get(i)) continue;
      const uint64_t* row = sim_.record().row(rows[i]);
      for (size_t w = 0; w < words_; ++w) out[w] ^= row[w];
    }
  }
  for (uint32_t q : kAncA) sim_.reset(q);
}

void BatchSteaneRecovery::decode_positions(const uint64_t* syndrome_rows,
                                           const uint64_t* act_mask,
                                           uint64_t* pos_masks) const {
  const uint64_t* s0 = syndrome_rows;
  const uint64_t* s1 = syndrome_rows + words_;
  const uint64_t* s2 = syndrome_rows + 2 * words_;
  // Syndrome bits (s0,s1,s2) spell the 1-based position s0*4 + s1*2 + s2
  // (Eq. 3); position value-1 gets the correction.
  for (size_t value = 1; value <= 7; ++value) {
    uint64_t* out = pos_masks + (value - 1) * words_;
    for (size_t w = 0; w < words_; ++w) {
      uint64_t m = act_mask[w];
      m &= (value & 4) ? s0[w] : ~s0[w];
      m &= (value & 2) ? s1[w] : ~s1[w];
      m &= (value & 1) ? s2[w] : ~s2[w];
      out[w] = m;
    }
  }
}

void BatchSteaneRecovery::correct(bool phase_type,
                                  const uint64_t* syndrome_rows,
                                  const uint64_t* act_mask) {
  if (!any_bit(act_mask, words_)) return;
  std::vector<uint64_t> pos_masks(7 * words_);
  decode_positions(syndrome_rows, act_mask, pos_masks.data());

  // The serial correction is a one-gate circuit over the data block: gate
  // noise lands on the corrected qubit, storage noise on the other six, and
  // only for the lanes that actually correct (§3.4 lanes that deferred take
  // no fault opportunity at all).
  for (size_t p = 0; p < 7; ++p) {
    sim_.depolarize1(kData[p], noise_.eps_gate1, pos_masks.data() + p * words_);
  }
  std::vector<uint64_t> storage_mask(words_);
  for (size_t q = 0; q < 7; ++q) {
    const uint64_t* pos = pos_masks.data() + q * words_;
    for (size_t w = 0; w < words_; ++w) storage_mask[w] = act_mask[w] & ~pos[w];
    sim_.depolarize1(kData[q], noise_.eps_store, storage_mask.data());
  }
  for (size_t p = 0; p < 7; ++p) {
    const uint64_t* pos = pos_masks.data() + p * words_;
    if (phase_type) {
      sim_.inject_z_masked(kData[p], pos);
    } else {
      sim_.inject_x_masked(kData[p], pos);
    }
  }
}

void BatchSteaneRecovery::run_cycle() {
  std::vector<uint64_t> syn1(3 * words_), syn2(3 * words_);
  std::vector<uint64_t> nontrivial(words_), agree(words_);
  for (const bool phase_type : {false, true}) {
    extract_syndrome(phase_type, nullptr, syn1.data());
    for (size_t w = 0; w < words_; ++w) {
      nontrivial[w] = syn1[w] | syn1[words_ + w] | syn1[2 * words_ + w];
    }
    if (!any_bit(nontrivial.data(), words_)) continue;  // §3.4: no action
    if (policy_.repeat_nontrivial_syndrome) {
      // Only the nontrivial lanes pay for (and can be hurt by) the repeat.
      extract_syndrome(phase_type, nontrivial.data(), syn2.data());
      for (size_t w = 0; w < words_; ++w) {
        agree[w] = nontrivial[w] & ~(syn1[w] ^ syn2[w]) &
                   ~(syn1[words_ + w] ^ syn2[words_ + w]) &
                   ~(syn1[2 * words_ + w] ^ syn2[2 * words_ + w]);
      }
      correct(phase_type, syn1.data(), agree.data());
    } else {
      correct(phase_type, syn1.data(), nontrivial.data());
    }
  }
}

uint64_t BatchSteaneRecovery::count_frames(bool logical,
                                           size_t num_lanes) const {
  const uint64_t* x_rows[7];
  const uint64_t* z_rows[7];
  for (size_t i = 0; i < 7; ++i) {
    x_rows[i] = sim_.x_flips(kData[i]);
    z_rows[i] = sim_.z_flips(kData[i]);
  }
  std::vector<uint64_t> lx(words_), lz(words_);
  decode_rows(x_rows, logical, lx.data());
  decode_rows(z_rows, logical, lz.data());
  for (size_t w = 0; w < words_; ++w) lx[w] |= lz[w];
  return popcount_lanes(lx.data(), words_,
                        std::min(num_lanes, sim_.num_shots()));
}

uint64_t BatchSteaneRecovery::count_any_logical_error(size_t num_lanes) const {
  return count_frames(/*logical=*/true, num_lanes);
}

uint64_t BatchSteaneRecovery::count_residual(size_t num_lanes) const {
  return count_frames(/*logical=*/false, num_lanes);
}

bool BatchSteaneRecovery::logical_x_error(size_t shot) const {
  gf2::BitVec word(7);
  for (size_t q = 0; q < 7; ++q) word.set(q, sim_.x_flip(kData[q], shot));
  return hamming_.decode_logical(word);
}

bool BatchSteaneRecovery::logical_z_error(size_t shot) const {
  gf2::BitVec word(7);
  for (size_t q = 0; q < 7; ++q) word.set(q, sim_.z_flip(kData[q], shot));
  return hamming_.decode_logical(word);
}

}  // namespace ftqc::ft
