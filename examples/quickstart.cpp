// Quickstart: encode a qubit in Steane's [[7,1,3]] code, damage it, run
// fault-tolerant recovery, and read it back.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <array>
#include <cstdio>

#include "codes/library.h"
#include "example_util.h"
#include "ft/encoded_measure.h"
#include "ft/steane_circuits.h"
#include "ft/steane_recovery.h"
#include "ft/transversal.h"
#include "sim/runner.h"
#include "sim/tableau_sim.h"

int main(int argc, char** argv) {
  using namespace ftqc;
  const bool smoke = strip_smoke_flag(argc, argv);
  constexpr std::array<uint32_t, 7> kBlock = {0, 1, 2, 3, 4, 5, 6};

  std::printf("== 1. Encode |1> with the Fig. 3 circuit (exact simulation) ==\n");
  sim::TableauSim tableau(7, /*seed=*/42);
  tableau.apply_x(0);  // the unknown input state, here |1>
  run_circuit(tableau, ft::steane_encoder(kBlock));
  std::printf("   encoded; all six stabilizer generators fixed:\n");
  for (const auto& g : codes::steane().generators()) {
    bool sign = false;
    const bool ok = tableau.stabilizes(g, &sign) && !sign;
    std::printf("     %s : %s\n", g.to_string().c_str(), ok ? "+1" : "BROKEN");
  }

  std::printf("\n== 2. Damage one qubit, then measure fault-tolerantly ==\n");
  tableau.apply_x(3);  // a bit-flip error strikes qubit 3
  const bool value = ft::destructive_logical_measure(tableau, kBlock);
  std::printf("   destructive logical measurement reads: %d (expected 1 —\n"
              "   the classical Hamming step absorbed the error)\n",
              value);

  std::printf("\n== 3. Statistical memory: noisy recovery cycles (Fig. 9) ==\n");
  const double eps = 2e-4;  // comfortably below the ~9e-4 pseudothreshold
  const auto noise = sim::NoiseParams::uniform_gate(eps);
  size_t failures = 0;
  const size_t shots = smoke ? 1000 : 100000;
  for (size_t s = 0; s < shots; ++s) {
    ft::SteaneRecovery rec(noise, ft::RecoveryPolicy{}, 1000 + s);
    rec.apply_memory_noise(eps);  // one storage step
    rec.run_cycle();              // one fault-tolerant recovery
    failures += rec.any_logical_error() ? 1 : 0;
  }
  const double rate =
      static_cast<double>(failures) / static_cast<double>(shots);
  std::printf("   gate error %.0e: logical failure %zu / %zu = %.1e per cycle\n",
              eps, failures, shots, rate);
  std::printf(
      "   a bare qubit fails at ~%.0e per step: encoding wins ~%.0fx here,\n"
      "   and the margin grows as 1/eps (run bench_e05 for the full sweep).\n",
      eps, rate > 0 ? eps / rate : static_cast<double>(shots) * eps);
  return 0;
}
