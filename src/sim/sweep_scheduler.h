#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/shot_runner.h"

// Work-stealing sweep scheduler with checkpoint/resume.
//
// A parameter sweep — (bench, code, noise, discipline, eps) grids like
// E14's decoder x lattice x p matrix or E18's level x discipline x eps
// ladder — is a bag of independent Monte Carlo jobs with wildly uneven
// costs (an exRec rare-event stratum runs 1000x longer than a toric L=4
// point). The scheduler runs such a bag on a work-stealing worker pool,
// checkpoints every completed point to its own BENCH_<bench>.<id>.json
// shard, and on the next invocation skips the points whose shards are
// already present — so a killed campaign resumes instead of restarting.
//
// Determinism contract: each point owns its seeds (either explicit legacy
// seeds, or plan_for_point()'s decorrelated derivation from the ShotPlan
// stride scheme) and runs its shot loops serially (plan.parallel = false);
// all cross-shot parallelism lives in the scheduler. A point's metrics are
// therefore identical no matter how many workers ran the sweep, which
// points were stolen, or how many kill/resume rounds it took — the
// checkpoint/resume test pins straight-through == killed-and-resumed.
namespace ftqc::sim {

// Flat ordered key -> double metric set produced by one sweep point. Doubles
// cover everything the shards need (counts serialize exactly up to 2^53,
// far beyond any shot budget here); non-finite values serialize as JSON
// null and read back as absent.
class SweepMetrics {
 public:
  void add(std::string key, double value) {
    fields_.emplace_back(std::move(key), value);
  }
  [[nodiscard]] std::optional<double> get(std::string_view key) const;
  // get() or die: for metrics the caller just computed a few lines up.
  [[nodiscard]] double at(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& fields()
      const {
    return fields_;
  }

 private:
  std::vector<std::pair<std::string, double>> fields_;
};

// One job: `run` computes the point's metrics (typically one ShotRunner
// sweep), returning nullopt on failure (a failed point is neither
// checkpointed nor retried this invocation). `bench` groups the shards;
// `id` must be unique within the bench and stable across invocations —
// it is the checkpoint key AND the seed-derivation key, so renaming a
// point re-runs (and re-seeds) it.
struct SweepPoint {
  std::string bench;
  std::string id;
  std::function<std::optional<SweepMetrics>()> run;
};

// Decorrelated per-point plan, derived from the ShotPlan stride scheme the
// same way the rare-event strata derive theirs: FNV-1a of "bench/id" feeds
// ShotPlan::for_stratum's splitmix64 offset, so point A's shot i never
// replays point B's seed stream, while shots/stride/engine/blocking carry
// over unchanged. Also forces parallel = false: under the scheduler the
// worker pool owns all parallelism (nested OpenMP teams would oversubscribe
// and, worse, re-couple a point's cost to the thread schedule).
[[nodiscard]] ShotPlan plan_for_point(const ShotPlan& base,
                                      std::string_view bench,
                                      std::string_view id);

// Completed-point store: one BENCH_<bench>.<sanitized id>.json shard per
// point, written atomically (temp + rename) so a kill never leaves a
// half-shard that poisons the resume scan. Construction loads every
// readable shard under `dir`; record() is thread-safe.
class CheckpointStore {
 public:
  // Empty dir disables persistence (the store still caches in memory).
  explicit CheckpointStore(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] bool contains(std::string_view bench,
                              std::string_view id) const;
  [[nodiscard]] std::optional<SweepMetrics> find(std::string_view bench,
                                                 std::string_view id) const;
  void record(std::string_view bench, std::string_view id,
              const SweepMetrics& metrics);
  [[nodiscard]] size_t size() const;

  // "BENCH_<bench>.<id>.json" with id's non-[A-Za-z0-9_.-] bytes mapped to
  // '_' (the id itself is stored inside the shard, so sanitization
  // collisions would only merge checkpoints, never corrupt values — avoid
  // ids that differ solely in punctuation anyway).
  [[nodiscard]] static std::string shard_filename(std::string_view bench,
                                                  std::string_view id);

 private:
  mutable std::mutex mutex_;
  std::string dir_;
  std::map<std::string, SweepMetrics, std::less<>> loaded_;
};

struct SweepOptions {
  // 0 = one worker per hardware thread (OMP_NUM_THREADS-respecting when
  // built with OpenMP). The pool is std::thread-based either way.
  size_t workers = 0;
  // Stop after this many fresh completions (0 = run everything): the
  // "simulated kill" used by the resume tests and --max-points flags.
  size_t max_points = 0;
  // Per-point completion lines on stderr (stdout stays parseable:
  // BENCH_JSON readers grep it).
  bool verbose = true;
};

struct SweepReport {
  size_t completed = 0;  // fresh points run to success this invocation
  size_t skipped = 0;    // resumed from checkpoint shards
  size_t failed = 0;     // run() returned nullopt
  size_t remaining = 0;  // left undone by max_points
  double seconds = 0;
  // Input order; nullopt = not resolved (failed, or cut by max_points).
  std::vector<std::optional<SweepMetrics>> results;
  [[nodiscard]] bool finished() const { return remaining == 0 && failed == 0; }
};

// Runs the bag. Checkpointed points resolve from `store` without running;
// fresh completions are recorded back into it. Pass store = nullptr to run
// without checkpointing. Worker w owns every index congruent to w; an idle
// worker steals from the most loaded victim's queue, so one long rare-event
// point never serializes the tail of the sweep behind it.
SweepReport run_sweep(const std::vector<SweepPoint>& points,
                      const SweepOptions& options = {},
                      CheckpointStore* store = nullptr);

}  // namespace ftqc::sim
