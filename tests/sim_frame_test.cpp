#include <gtest/gtest.h>

#include "common/stats.h"
#include "sim/batch_frame_sim.h"
#include "sim/frame_sim.h"
#include "sim/noise_model.h"
#include "sim/runner.h"
#include "sim/tableau_sim.h"

namespace ftqc::sim {
namespace {

TEST(FrameSim, XErrorFlipsZMeasurement) {
  FrameSim sim(2);
  sim.inject_x(0);
  EXPECT_TRUE(sim.measure_z(0));
  EXPECT_FALSE(sim.measure_z(1));
}

TEST(FrameSim, ZErrorFlipsXMeasurementOnly) {
  FrameSim sim(1);
  sim.inject_z(0);
  EXPECT_TRUE(sim.destructive_x_flip(0));
  EXPECT_FALSE(sim.destructive_z_flip(0));
}

TEST(FrameSim, ForwardXPropagationThroughCX) {
  // §3.1: a bit flip on the source of an XOR propagates to the target.
  FrameSim sim(2);
  sim.inject_x(0);
  sim.apply_cx(0, 1);
  EXPECT_TRUE(sim.destructive_z_flip(0));
  EXPECT_TRUE(sim.destructive_z_flip(1));
}

TEST(FrameSim, BackwardZPropagationThroughCX) {
  // §3.1: a phase error on the target propagates backward to the source.
  FrameSim sim(2);
  sim.inject_z(1);
  sim.apply_cx(0, 1);
  EXPECT_TRUE(sim.destructive_x_flip(0));
  EXPECT_TRUE(sim.destructive_x_flip(1));
}

TEST(FrameSim, HadamardExchangesXAndZ) {
  FrameSim sim(1);
  sim.inject_x(0);
  sim.apply_h(0);
  EXPECT_TRUE(sim.destructive_x_flip(0));
  EXPECT_FALSE(sim.destructive_z_flip(0));
}

TEST(FrameSim, ResetClearsFrame) {
  FrameSim sim(1);
  sim.inject_x(0);
  sim.inject_z(0);
  sim.reset(0);
  EXPECT_FALSE(sim.destructive_z_flip(0));
  EXPECT_FALSE(sim.destructive_x_flip(0));
}

TEST(FrameSim, LeakedQubitFreezesFrame) {
  FrameSim sim(2);
  sim.mark_leaked(0);
  sim.inject_x(1);
  sim.apply_cx(1, 0);  // absorbed: target leaked
  EXPECT_FALSE(sim.destructive_z_flip(0));
  sim.reset(0);
  EXPECT_FALSE(sim.is_leaked(0));
}

// Statistical agreement between FrameSim and TableauSim on a noisy circuit:
// the marginal flip probability of a measurement matches the full simulation.
TEST(FrameSim, AgreesWithTableauOnNoisyMemory) {
  // One qubit, depolarizing storage noise over 4 ticks, then measure.
  Circuit ideal(1);
  for (int t = 0; t < 4; ++t) ideal.tick();
  ideal.m(0);
  NoiseParams params;
  params.eps_store = 0.2;
  const Circuit noisy = add_noise(ideal, params);

  const size_t shots = 20000;
  Proportion tableau_flips;
  Proportion frame_flips;
  for (size_t s = 0; s < shots; ++s) {
    TableauSim tab(1, 10'000 + s);
    tableau_flips.trials++;
    tableau_flips.successes += run_circuit(tab, noisy)[0];

    FrameSim frame(1, 20'000 + s);
    frame_flips.trials++;
    frame_flips.successes += run_circuit(frame, noisy)[0];
  }
  // Both estimate the same physical flip probability.
  EXPECT_NEAR(tableau_flips.mean(), frame_flips.mean(),
              3 * (tableau_flips.wilson_halfwidth() +
                   frame_flips.wilson_halfwidth()));
}

TEST(BatchFrameSim, MatchesSingleFrameStatistics) {
  // X_ERROR(p) on one qubit: batch lanes should hit at rate ~p.
  const double p = 0.05;
  BatchFrameSim batch(1, 64 * 512, 99);
  Circuit c(1);
  c.x_error(0, p);
  batch.run(c);
  size_t hits = 0;
  for (size_t shot = 0; shot < batch.num_shots(); ++shot) {
    hits += batch.x_flip(0, shot);
  }
  const double rate = static_cast<double>(hits) / batch.num_shots();
  EXPECT_NEAR(rate, p, 0.01);
}

TEST(BatchFrameSim, CXPropagatesAllLanes) {
  BatchFrameSim batch(2, 128, 7);
  Circuit c(2);
  c.inject(0, 'X');
  c.cx(0, 1);
  batch.run(c);
  for (size_t shot = 0; shot < batch.num_shots(); ++shot) {
    EXPECT_TRUE(batch.x_flip(0, shot));
    EXPECT_TRUE(batch.x_flip(1, shot));
  }
}

TEST(BatchFrameSim, Depolarize1FlavorBalance) {
  // X:Y:Z flavors should be equally likely; Y contributes to both X and Z
  // flips, so P(x flip) = P(z flip) = 2p/3.
  const double p = 0.3;
  BatchFrameSim batch(1, 64 * 2048, 123);
  Circuit c(1);
  c.depolarize1(0, p);
  batch.run(c);
  size_t x_hits = 0, z_hits = 0;
  for (size_t shot = 0; shot < batch.num_shots(); ++shot) {
    x_hits += batch.x_flip(0, shot);
    z_hits += batch.z_flip(0, shot);
  }
  const double n = static_cast<double>(batch.num_shots());
  EXPECT_NEAR(x_hits / n, 2 * p / 3, 0.01);
  EXPECT_NEAR(z_hits / n, 2 * p / 3, 0.01);
}

TEST(NoiseModel, InsertsGateNoiseAfterEveryGate) {
  Circuit ideal(2);
  ideal.h(0);
  ideal.cx(0, 1);
  ideal.tick();
  ideal.m(0);
  const auto noisy = add_noise(ideal, NoiseParams::uniform_gate(1e-3));
  EXPECT_EQ(noisy.count(Gate::DEPOLARIZE1), 1u);  // after H
  EXPECT_EQ(noisy.count(Gate::DEPOLARIZE2), 1u);  // after CX
  EXPECT_EQ(noisy.count(Gate::X_ERROR), 1u);      // before M
}

TEST(NoiseModel, StorageNoiseOnlyOnIdleQubits) {
  Circuit ideal(3);
  ideal.h(0);
  ideal.tick();  // qubits 1, 2 idle
  NoiseParams params;
  params.eps_store = 1e-3;
  const auto noisy = add_noise(ideal, params);
  EXPECT_EQ(noisy.count(Gate::DEPOLARIZE1), 2u);
  // The storage errors land on qubits 1 and 2.
  for (const auto& op : noisy.ops()) {
    if (op.gate == Gate::DEPOLARIZE1) {
      EXPECT_NE(op.targets[0], 0u);
    }
  }
}

TEST(NoiseModel, NoiselessParamsLeaveCircuitUnchanged) {
  Circuit ideal(2);
  ideal.h(0);
  ideal.cx(0, 1);
  ideal.m(1);
  const auto noisy = add_noise(ideal, NoiseParams{});
  EXPECT_EQ(noisy.ops().size(), ideal.ops().size());
  EXPECT_EQ(count_fault_locations(noisy), 0u);
}

TEST(NoiseModel, BiasedParamsCompileToPauliChannels) {
  Circuit ideal(2);
  ideal.h(0);
  ideal.cx(0, 1);
  const double eps = 1e-3, eta = 10.0;
  const auto params = NoiseParams::biased_gate(eps, eta);
  const auto noisy = add_noise(ideal, params);
  EXPECT_EQ(noisy.count(Gate::DEPOLARIZE1), 0u);
  EXPECT_EQ(noisy.count(Gate::DEPOLARIZE2), 0u);
  EXPECT_EQ(noisy.count(Gate::PAULI_CHANNEL1), 1u);
  EXPECT_EQ(noisy.count(Gate::PAULI_CHANNEL2), 1u);
  for (const auto& op : noisy.ops()) {
    if (op.gate == Gate::PAULI_CHANNEL1) {
      // (p_x, p_y, p_z) = eps * frac: total eps, Z eta times more likely.
      EXPECT_DOUBLE_EQ(op.arg, eps * params.frac_x());
      EXPECT_DOUBLE_EQ(op.arg2, eps * params.frac_y());
      EXPECT_DOUBLE_EQ(op.arg3, eps * params.frac_z());
      EXPECT_NEAR(op.arg + op.arg2 + op.arg3, eps, 1e-15);
      EXPECT_NEAR(op.arg3 / op.arg, eta, 1e-9);
    } else if (op.gate == Gate::PAULI_CHANNEL2) {
      EXPECT_DOUBLE_EQ(op.arg, eps);
      EXPECT_DOUBLE_EQ(op.arg2, params.frac_x());
      EXPECT_DOUBLE_EQ(op.arg3, params.frac_y());
    }
  }
}

TEST(NoiseModel, EqualBiasFieldsStayOnTheDepolarizePath) {
  // bias (c, c, c) for any c is unbiased: the compiled circuit must be
  // op-for-op what the pre-bias compiler emitted (pinned RNG streams
  // depend on this).
  Circuit ideal(2);
  ideal.h(0);
  ideal.cx(0, 1);
  ideal.tick();
  NoiseParams scaled = NoiseParams::uniform_gate(1e-3, /*eps_store=*/1e-4);
  scaled.bias_x = scaled.bias_y = scaled.bias_z = 7.0;
  EXPECT_FALSE(scaled.is_biased());
  const auto baseline =
      add_noise(ideal, NoiseParams::uniform_gate(1e-3, 1e-4));
  const auto noisy = add_noise(ideal, scaled);
  ASSERT_EQ(noisy.ops().size(), baseline.ops().size());
  for (size_t i = 0; i < noisy.ops().size(); ++i) {
    EXPECT_EQ(noisy.ops()[i].gate, baseline.ops()[i].gate) << i;
    EXPECT_DOUBLE_EQ(noisy.ops()[i].arg, baseline.ops()[i].arg) << i;
  }
  EXPECT_EQ(noisy.count(Gate::PAULI_CHANNEL1), 0u);
  EXPECT_EQ(noisy.count(Gate::PAULI_CHANNEL2), 0u);
}

TEST(NoiseModel, ErasureInsertsHeraldOpsAtEveryExposedLocation) {
  // One ERASE per 1-qubit gate, two per 2-qubit gate, one per reset.
  Circuit ideal(2);
  ideal.h(0);
  ideal.cx(0, 1);
  ideal.r(1);
  const auto params = NoiseParams::with_erasure(1e-3, /*p_erase=*/0.02);
  const auto noisy = add_noise(ideal, params);
  EXPECT_EQ(noisy.count(Gate::ERASE), 4u);
  for (const auto& op : noisy.ops()) {
    if (op.gate == Gate::ERASE) {
      EXPECT_DOUBLE_EQ(op.arg, 0.02);
    }
  }
  // p_erase = 0 compiles no ERASE ops at all.
  const auto plain = add_noise(ideal, NoiseParams::uniform_gate(1e-3));
  EXPECT_EQ(plain.count(Gate::ERASE), 0u);
}

}  // namespace
}  // namespace ftqc::sim
