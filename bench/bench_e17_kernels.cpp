// E17 (substrate): kernel throughput of the simulation engines via
// google-benchmark: tableau Clifford ops, Pauli-frame shots, bit-parallel
// batch frames, state-vector Toffolis and anyon pull-throughs.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "ft/steane_recovery.h"
#include "sim/batch_frame_sim.h"
#include "sim/frame_sim.h"
#include "sim/statevector_sim.h"
#include "sim/tableau_sim.h"
#include "topo/anyon_gates.h"
#include "topo/anyon_sim.h"

namespace {

using namespace ftqc;

void BM_TableauCnot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  sim::TableauSim sim(n, 1);
  size_t a = 0;
  for (auto _ : state) {
    sim.apply_cx(a, (a + 1) % n);
    a = (a + 2) % n;
    benchmark::DoNotOptimize(sim);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TableauCnot)->Arg(49)->Arg(343);

void BM_TableauMeasure(benchmark::State& state) {
  sim::TableauSim sim(49, 1);
  for (size_t q = 0; q < 49; ++q) sim.apply_h(q);
  size_t q = 0;
  for (auto _ : state) {
    sim.apply_h(q);
    benchmark::DoNotOptimize(sim.measure_z(q));
    q = (q + 1) % 49;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TableauMeasure);

void BM_FrameRecoveryCycle(benchmark::State& state) {
  const auto noise = sim::NoiseParams::uniform_gate(1e-3);
  uint64_t seed = 1;
  for (auto _ : state) {
    ft::SteaneRecovery rec(noise, ft::RecoveryPolicy{}, seed++);
    rec.run_cycle();
    benchmark::DoNotOptimize(rec.any_logical_error());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel("full Fig.9 cycles");
}
BENCHMARK(BM_FrameRecoveryCycle);

void BM_BatchFrameMemory(benchmark::State& state) {
  // 64-way bit-parallel frames on a 7-qubit memory channel.
  sim::Circuit channel(7);
  for (uint32_t q = 0; q < 7; ++q) channel.depolarize1(q, 1e-3);
  for (uint32_t q = 0; q < 7; ++q) channel.cx(q, (q + 1) % 7);
  const size_t shots = 64 * 1024;
  sim::BatchFrameSim batch(7, shots, 3);
  for (auto _ : state) {
    batch.clear();
    batch.run(channel);
    benchmark::DoNotOptimize(batch.x_flips(0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(shots));
  state.SetLabel("shots");
}
BENCHMARK(BM_BatchFrameMemory);

void BM_StateVectorToffoli(benchmark::State& state) {
  sim::StateVectorSim sim(static_cast<size_t>(state.range(0)), 1);
  for (size_t q = 0; q < sim.num_qubits(); ++q) sim.apply_h(q);
  size_t t = 0;
  for (auto _ : state) {
    sim.apply_ccx(t, (t + 1) % sim.num_qubits(), (t + 2) % sim.num_qubits());
    t = (t + 3) % sim.num_qubits();
    benchmark::DoNotOptimize(sim);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StateVectorToffoli)->Arg(16)->Arg(20);

void BM_AnyonPullThrough(benchmark::State& state) {
  static const topo::A5 group;
  topo::AnyonSim sim(group, 1);
  const size_t a = topo::create_computational_pair(sim, false);
  const size_t b = sim.create_vacuum_pair(topo::computational_u0());
  for (auto _ : state) {
    sim.pull_through(a, b);
    benchmark::DoNotOptimize(sim.norm());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel("20-term superposition");
}
BENCHMARK(BM_AnyonPullThrough);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): `--smoke` (used by the CTest
// bench-smoke tier) maps onto a minimal-iteration benchmark run.
int main(int argc, char** argv) {
  std::vector<char*> args;
  static char min_time_flag[] = "--benchmark_min_time=0.01";
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::string(argv[i]) == "--smoke") {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (smoke) args.push_back(min_time_flag);
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
