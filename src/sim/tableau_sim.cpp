#include "sim/tableau_sim.h"

namespace ftqc::sim {

using pauli::PauliString;

TableauSim::TableauSim(size_t num_qubits, uint64_t seed)
    : n_(num_qubits), leaked_(num_qubits, false), rng_(seed) {
  rows_.resize(2 * n_);
  for (size_t i = 0; i < 2 * n_; ++i) {
    rows_[i].x = gf2::BitVec(n_);
    rows_[i].z = gf2::BitVec(n_);
  }
  // |0...0>: destabilizer i = X_i, stabilizer i = Z_i.
  for (size_t i = 0; i < n_; ++i) {
    rows_[i].x.set(i, true);
    rows_[n_ + i].z.set(i, true);
  }
}

void TableauSim::apply_h(size_t q) {
  if (leaked_[q]) return;
  for (auto& row : rows_) {
    const bool x = row.x.get(q);
    const bool z = row.z.get(q);
    if (x && z) row.sign = !row.sign;  // Y -> -Y
    row.x.set(q, z);
    row.z.set(q, x);
  }
}

void TableauSim::apply_s(size_t q) {
  if (leaked_[q]) return;
  for (auto& row : rows_) {
    const bool x = row.x.get(q);
    const bool z = row.z.get(q);
    if (x && z) row.sign = !row.sign;  // Y -> -X
    if (x) row.z.set(q, !z);           // X -> Y
  }
}

void TableauSim::apply_s_dag(size_t q) {
  if (leaked_[q]) return;
  for (auto& row : rows_) {
    const bool x = row.x.get(q);
    const bool z = row.z.get(q);
    if (x && !z) row.sign = !row.sign;  // X -> -Y
    if (x) row.z.set(q, !z);            // Y -> X
  }
}

void TableauSim::apply_x(size_t q) {
  if (leaked_[q]) return;
  for (auto& row : rows_) {
    if (row.z.get(q)) row.sign = !row.sign;  // Z -> -Z, Y -> -Y
  }
}

void TableauSim::apply_z(size_t q) {
  if (leaked_[q]) return;
  for (auto& row : rows_) {
    if (row.x.get(q)) row.sign = !row.sign;  // X -> -X, Y -> -Y
  }
}

void TableauSim::apply_y(size_t q) {
  if (leaked_[q]) return;
  for (auto& row : rows_) {
    if (row.x.get(q) != row.z.get(q)) row.sign = !row.sign;  // X,Z flip sign
  }
}

void TableauSim::apply_cx(size_t control, size_t target) {
  if (leaked_[control] || leaked_[target]) return;
  for (auto& row : rows_) {
    const bool xc = row.x.get(control);
    const bool zc = row.z.get(control);
    const bool xt = row.x.get(target);
    const bool zt = row.z.get(target);
    if (xc && zt && (xt == zc)) row.sign = !row.sign;
    row.x.set(target, xt ^ xc);
    row.z.set(control, zc ^ zt);
  }
}

void TableauSim::apply_cz(size_t a, size_t b) {
  if (leaked_[a] || leaked_[b]) return;
  apply_h(b);
  apply_cx(a, b);
  apply_h(b);
}

void TableauSim::apply_swap(size_t a, size_t b) {
  if (leaked_[a] || leaked_[b]) return;
  for (auto& row : rows_) {
    const bool xa = row.x.get(a), za = row.z.get(a);
    const bool xb = row.x.get(b), zb = row.z.get(b);
    row.x.set(a, xb);
    row.z.set(a, zb);
    row.x.set(b, xa);
    row.z.set(b, za);
  }
}

void TableauSim::apply_pauli(const PauliString& p) {
  FTQC_CHECK(p.num_qubits() == n_, "apply_pauli size mismatch");
  for (size_t q = 0; q < n_; ++q) {
    if (leaked_[q]) continue;
    const bool px = p.x_bit(q);
    const bool pz = p.z_bit(q);
    if (px && pz) {
      apply_y(q);
    } else if (px) {
      apply_x(q);
    } else if (pz) {
      apply_z(q);
    }
  }
}

int TableauSim::phase_exponent_of_product(const Row& a, const Row& b) {
  int phase = (a.sign ? 2 : 0) + (b.sign ? 2 : 0);
  const size_t words = a.x.num_words();
  for (size_t w = 0; w < words; ++w) {
    uint64_t overlap = (a.x.word(w) | a.z.word(w)) & (b.x.word(w) | b.z.word(w));
    while (overlap != 0) {
      const int bit = __builtin_ctzll(overlap);
      overlap &= overlap - 1;
      const size_t q = (w << 6) + static_cast<size_t>(bit);
      phase += pauli::pauli_product_phase(a.x.get(q), a.z.get(q), b.x.get(q),
                                          b.z.get(q));
    }
  }
  return ((phase % 4) + 4) % 4;
}

void TableauSim::row_mult_into(const Row& src, Row& dst) const {
  const int phase = phase_exponent_of_product(src, dst);
  FTQC_DCHECK(phase % 2 == 0, "tableau row product acquired imaginary phase");
  dst.x ^= src.x;
  dst.z ^= src.z;
  dst.sign = phase == 2;
}

void TableauSim::row_mult_into(size_t i, size_t h) {
  row_mult_into(rows_[i], rows_[h]);
}

bool TableauSim::row_anticommutes(size_t row, const PauliString& p) const {
  return rows_[row].x.dot(p.z_part()) ^ rows_[row].z.dot(p.x_part());
}

bool TableauSim::measure_pauli(const PauliString& p) {
  FTQC_CHECK(p.num_qubits() == n_, "measure_pauli size mismatch");
  FTQC_CHECK(p.phase_exponent() % 2 == 0, "cannot measure an imaginary Pauli");
  const bool p_negative = p.phase_exponent() == 2;

  // Find a stabilizer generator anticommuting with P.
  size_t pivot = 2 * n_;
  for (size_t row = n_; row < 2 * n_; ++row) {
    if (row_anticommutes(row, p)) {
      pivot = row;
      break;
    }
  }

  if (pivot != 2 * n_) {
    // Random outcome. Fix up all other anticommuting rows, then install P.
    // The pivot's destabilizer partner is skipped: it anticommutes with the
    // pivot (their product would carry an imaginary phase) and is overwritten
    // with the old pivot row immediately below.
    for (size_t row = 0; row < 2 * n_; ++row) {
      if (row != pivot && row != pivot - n_ && row_anticommutes(row, p)) {
        row_mult_into(pivot, row);
      }
    }
    rows_[pivot - n_] = rows_[pivot];
    const bool outcome = (rng_.next_u64() & 1) != 0;
    rows_[pivot].x = p.x_part();
    rows_[pivot].z = p.z_part();
    rows_[pivot].sign = outcome != p_negative;
    return outcome;
  }

  // Deterministic outcome: accumulate the product of stabilizer rows whose
  // destabilizer partner anticommutes with P; the result must be ±P.
  Row scratch;
  scratch.x = gf2::BitVec(n_);
  scratch.z = gf2::BitVec(n_);
  for (size_t i = 0; i < n_; ++i) {
    if (row_anticommutes(i, p)) row_mult_into(rows_[n_ + i], scratch);
  }
  FTQC_CHECK(scratch.x == p.x_part() && scratch.z == p.z_part(),
             "deterministic measurement did not reproduce the observable");
  return scratch.sign != p_negative;
}

std::optional<bool> TableauSim::peek_pauli(const PauliString& p) const {
  FTQC_CHECK(p.num_qubits() == n_, "peek_pauli size mismatch");
  for (size_t row = n_; row < 2 * n_; ++row) {
    if (row_anticommutes(row, p)) return std::nullopt;
  }
  Row scratch;
  scratch.x = gf2::BitVec(n_);
  scratch.z = gf2::BitVec(n_);
  for (size_t i = 0; i < n_; ++i) {
    if (row_anticommutes(i, p)) row_mult_into(rows_[n_ + i], scratch);
  }
  FTQC_CHECK(scratch.x == p.x_part() && scratch.z == p.z_part(),
             "peeked observable not generated by the stabilizer");
  return scratch.sign != (p.phase_exponent() == 2);
}

bool TableauSim::stabilizes(const PauliString& p, bool* sign_out) const {
  for (size_t row = n_; row < 2 * n_; ++row) {
    if (row_anticommutes(row, p)) return false;
  }
  const auto value = peek_pauli(p);
  if (sign_out != nullptr) *sign_out = *value;
  return true;
}

bool TableauSim::measure_z(size_t q) {
  if (leaked_[q]) return (rng_.next_u64() & 1) != 0;
  return measure_pauli(PauliString::single(n_, q, 'Z'));
}

bool TableauSim::measure_x(size_t q) {
  if (leaked_[q]) return (rng_.next_u64() & 1) != 0;
  return measure_pauli(PauliString::single(n_, q, 'X'));
}

void TableauSim::reset(size_t q) {
  leaked_[q] = false;
  if (measure_z(q)) apply_x(q);
}

PauliString TableauSim::stabilizer(size_t i) const {
  FTQC_CHECK(i < n_, "stabilizer index out of range");
  const Row& row = rows_[n_ + i];
  PauliString p(n_);
  p.x_part() = row.x;
  p.z_part() = row.z;
  p.set_phase_exponent(row.sign ? 2 : 0);
  return p;
}

PauliString TableauSim::destabilizer(size_t i) const {
  FTQC_CHECK(i < n_, "destabilizer index out of range");
  const Row& row = rows_[i];
  PauliString p(n_);
  p.x_part() = row.x;
  p.z_part() = row.z;
  p.set_phase_exponent(row.sign ? 2 : 0);
  return p;
}

}  // namespace ftqc::sim
