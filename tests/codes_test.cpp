#include <gtest/gtest.h>

#include <cmath>

#include "codes/concatenated.h"
#include "codes/css.h"
#include "codes/library.h"
#include "codes/lookup_decoder.h"
#include "gf2/hamming.h"

namespace ftqc::codes {
namespace {

using pauli::PauliString;

TEST(SteaneCode, ParametersAndGenerators) {
  const auto& code = steane();
  EXPECT_EQ(code.n(), 7u);
  EXPECT_EQ(code.k(), 1u);
  EXPECT_EQ(code.num_generators(), 6u);
  EXPECT_EQ(code.brute_force_distance(), 3u);
}

TEST(SteaneCode, CssConstructionMatchesEq18Generators) {
  // Building the CSS code from the Hamming matrix reproduces a code with the
  // same stabilizer group as the hand-written Eq. (18) generators.
  const gf2::Hamming743 hamming;
  const auto css = make_css_code("steane-css", hamming.check_matrix(),
                                 hamming.check_matrix());
  const auto& ref = steane();
  for (const auto& g : css.generators()) {
    EXPECT_TRUE(ref.in_stabilizer_group(g)) << g.to_string();
  }
  for (const auto& g : ref.generators()) {
    EXPECT_TRUE(css.in_stabilizer_group(g)) << g.to_string();
  }
}

TEST(SteaneCode, SyndromeIdentifiesSingleErrors) {
  const auto& code = steane();
  // Distinct nonzero syndromes for all 21 single-qubit errors.
  std::set<uint64_t> seen;
  for (size_t q = 0; q < 7; ++q) {
    for (char c : {'X', 'Y', 'Z'}) {
      const auto syn = code.syndrome(PauliString::single(7, q, c));
      EXPECT_TRUE(syn.any()) << "single error must be detected";
      seen.insert(syn.to_u64());
    }
  }
  EXPECT_EQ(seen.size(), 21u);
}

TEST(SteaneCode, TwoBitFlipsMakeLogicalError) {
  // §2 / Eq. (12): two bit flips in a block are misdiagnosed; after recovery
  // the block has suffered a logical X.
  const auto& code = steane();
  const LookupDecoder decoder(code);
  PauliString error(7);
  error.set_pauli(1, 'X');
  error.set_pauli(4, 'X');
  const auto effect = decoder.residual_effect(error);
  EXPECT_TRUE(effect.x_flips.get(0));
  EXPECT_FALSE(effect.z_flips.get(0));
}

TEST(SteaneCode, BitPlusPhaseOnDifferentQubitsRecovers) {
  // §2: "If one qubit in the block has a phase error, and another one has a
  // bit flip error, then recovery will be successful."
  const auto& code = steane();
  const LookupDecoder decoder(code);
  PauliString error(7);
  error.set_pauli(2, 'X');
  error.set_pauli(5, 'Z');
  EXPECT_TRUE(decoder.corrects(error));
}

TEST(FiveQubitCode, ParametersAndDistance) {
  const auto& code = five_qubit();
  EXPECT_EQ(code.n(), 5u);
  EXPECT_EQ(code.k(), 1u);
  EXPECT_EQ(code.brute_force_distance(), 3u);
}

TEST(ShorCode, ParametersAndDistance) {
  const auto& code = shor9();
  EXPECT_EQ(code.n(), 9u);
  EXPECT_EQ(code.k(), 1u);
  EXPECT_EQ(code.brute_force_distance(), 3u);
}

TEST(ShorCode, IsDegenerate) {
  // Z1Z2 and Z2Z3-type pairs share syndromes: footnote e of §3.6. Two
  // distinct weight-1 Z errors in the same triple have the same syndrome and
  // their product lies in the stabilizer.
  const auto& code = shor9();
  const auto z0 = PauliString::single(9, 0, 'Z');
  const auto z1 = PauliString::single(9, 1, 'Z');
  EXPECT_EQ(code.syndrome(z0).to_u64(), code.syndrome(z1).to_u64());
  EXPECT_TRUE(code.in_stabilizer_group(z0 * z1));
}

TEST(Hamming15Code, ParametersMatchSection36) {
  const auto& code = hamming15();
  EXPECT_EQ(code.n(), 15u);
  EXPECT_EQ(code.k(), 7u);  // n - k = 8 generators
  EXPECT_EQ(code.num_generators(), 8u);
}

TEST(Hamming15Code, LogicalAlgebraHolds) {
  // validate() runs in the constructor; spot-check Eq. (29) directly too.
  const auto& code = hamming15();
  for (size_t i = 0; i < code.k(); ++i) {
    for (size_t j = 0; j < code.k(); ++j) {
      EXPECT_EQ(code.logical_x(i).commutes_with(code.logical_z(j)), i != j);
    }
  }
}

// All single-qubit errors are corrected perfectly on every library code.
class SingleErrorCorrection
    : public ::testing::TestWithParam<const StabilizerCode*> {};

TEST_P(SingleErrorCorrection, AllSingleErrorsCorrected) {
  const auto& code = *GetParam();
  const LookupDecoder decoder(code);
  for (size_t q = 0; q < code.n(); ++q) {
    for (char c : {'X', 'Y', 'Z'}) {
      const auto error = PauliString::single(code.n(), q, c);
      EXPECT_TRUE(decoder.corrects(error))
          << code.name() << " failed on " << error.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LibraryCodes, SingleErrorCorrection,
                         ::testing::Values(&steane(), &five_qubit(), &shor9(),
                                           &hamming15()),
                         [](const auto& info) {
                           const std::string& n = info.param->name();
                           std::string id;
                           for (char c : n) {
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               id += c;
                             }
                           }
                           return id;
                         });

TEST(LookupDecoder, TableCoversEverySyndrome) {
  EXPECT_EQ(LookupDecoder(steane()).table_size(), 64u);
  EXPECT_EQ(LookupDecoder(five_qubit()).table_size(), 16u);
  EXPECT_EQ(LookupDecoder(shor9()).table_size(), 256u);
  EXPECT_EQ(LookupDecoder(hamming15()).table_size(), 256u);
}

TEST(LookupDecoder, MinWeightRepresentatives) {
  // For the Steane code every nonzero syndrome must decode to weight <= 2
  // (any syndrome is reachable by one X plus one Z on possibly equal qubits).
  const LookupDecoder decoder(steane());
  for (uint64_t s = 1; s < 64; ++s) {
    gf2::BitVec syn(6);
    for (size_t b = 0; b < 6; ++b) syn.set(b, (s >> b) & 1);
    EXPECT_LE(decoder.decode(syn).weight(), 2u);
  }
}

TEST(ConcatenatedSteane, BlockSizes) {
  EXPECT_EQ(ConcatenatedSteane(1).block_size(), 7u);
  EXPECT_EQ(ConcatenatedSteane(2).block_size(), 49u);
  EXPECT_EQ(ConcatenatedSteane(3).block_size(), 343u);
}

TEST(ConcatenatedSteane, SingleErrorPerSubblockDecodes) {
  // Level 2: one flip in each of the seven subblocks is still corrected.
  const ConcatenatedSteane code(2);
  gf2::BitVec errors(49);
  for (size_t b = 0; b < 7; ++b) errors.set(7 * b + (b % 7), true);
  EXPECT_FALSE(code.decode_logical(errors));
}

TEST(ConcatenatedSteane, TwoFlipsInOneSubblockPropagateOneLevel) {
  // Two flips inside a single subblock flip that subblock's logical value,
  // but the level-2 block absorbs one subblock failure.
  const ConcatenatedSteane code(2);
  gf2::BitVec errors(49);
  errors.set(0, true);
  errors.set(1, true);
  const auto level1 = code.decode_to_level(errors, 1);
  EXPECT_TRUE(level1[0]);  // subblock 0 failed
  EXPECT_FALSE(code.decode_logical(errors));  // but level 2 recovers
}

TEST(ConcatenatedSteane, FlowMapQuadraticCoefficientIs21) {
  // Eq. (33): p_1 = 21 p_0^2 + O(p_0^3).
  const double p = 1e-4;
  const double p1 = ConcatenatedSteane::block_failure_exact(p);
  EXPECT_NEAR(p1 / (p * p), 21.0, 0.1);
}

TEST(ConcatenatedSteane, CodeCapacityThresholdNearInverse21) {
  // The exact fixed point lies near, but not exactly at, 1/21 (Eq. 33 keeps
  // only the quadratic term).
  const double threshold = ConcatenatedSteane::code_capacity_threshold();
  EXPECT_GT(threshold, 0.02);
  EXPECT_LT(threshold, 0.10);
}

TEST(ConcatenatedSteane, MonteCarloMatchesExactFlowAtLevel1) {
  const ConcatenatedSteane code(1);
  Rng rng(77);
  const double p = 0.02;
  const double mc = code.logical_failure_rate(p, 200000, rng);
  const double exact = ConcatenatedSteane::block_failure_exact(p);
  EXPECT_NEAR(mc, exact, 5e-4);
}

TEST(ConcatenatedSteane, ErrorRateShrinksDoublyExponentially) {
  // Below threshold, iterating the exact flow map gives Eq. (36)-style
  // double-exponential suppression.
  double p = 0.01;
  double prev = p;
  for (int level = 0; level < 4; ++level) {
    const double next = ConcatenatedSteane::block_failure_exact(prev);
    EXPECT_LT(next, prev * prev * 25);  // ~21 p^2 scaling
    prev = next;
  }
  EXPECT_LT(prev, 1e-10);  // four levels: p ~ 21^15 p0^16 ~ 5e-13
}

}  // namespace
}  // namespace ftqc::codes
