// E13 (§1): von Neumann's 1952 multiplexed majority voting — the classical
// ancestor of the accuracy threshold. Bundle error fraction trajectories
// below and above threshold, and the threshold itself.
#include <cstdio>

#include "bench_harness.h"
#include "classical/multiplexing.h"
#include "common/table.h"

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E13");
  using namespace ftqc::classical;

  std::printf(
      "E13: von Neumann multiplexing (majority-organ restoration).\n"
      "Mean-field map: f' = eps + (1-2eps)(3f^2 - 2f^3).\n\n");

  std::printf("Threshold (numeric fixed-point merge): %.4f (analytic: 1/6)\n\n",
              multiplexing_threshold());

  ftqc::Table table({"step", "f @ eps=0.01", "f @ eps=0.05", "f @ eps=0.25"});
  MultiplexedBundle below(20001, true, 3);
  MultiplexedBundle near(20001, true, 5);
  MultiplexedBundle above(20001, true, 7);
  below.corrupt(0.30);
  near.corrupt(0.30);
  above.corrupt(0.30);
  for (int step = 0; step <= 12; ++step) {
    table.add_row({ftqc::strfmt("%d", step),
                   ftqc::strfmt("%.4f", below.error_fraction()),
                   ftqc::strfmt("%.4f", near.error_fraction()),
                   ftqc::strfmt("%.4f", above.error_fraction())});
    below.restore_step(0.01);
    near.restore_step(0.05);
    above.restore_step(0.25);
  }
  table.print();

  std::printf("\nStable error fractions (mean field): eps=0.01 -> %.4f, "
              "eps=0.05 -> %.4f, eps=0.25 -> none\n",
              stable_error_fraction(0.01), stable_error_fraction(0.05));

  ftqc::bench::JsonResult json;
  json.add("threshold", multiplexing_threshold());
  json.add("stable_fraction_eps_0.01", stable_error_fraction(0.01));
  json.add("final_fraction_below", below.error_fraction());
  json.add("final_fraction_above", above.error_fraction());
  json.write();
  std::printf(
      "\nShape check: below threshold the bundle cleans itself up to a small\n"
      "pinned fraction; above threshold it scrambles toward 1/2 — the same\n"
      "dichotomy the quantum accuracy threshold (§5) generalizes.\n");
  return 0;
}
