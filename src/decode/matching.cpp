#include "decode/matching.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "common/check.h"

namespace ftqc::decode {
namespace {

constexpr size_t kInf = std::numeric_limits<size_t>::max() / 2;

// Greedy core shared by the standalone strategy and the oversized-cluster
// fallback: repeatedly match the globally closest remaining pair, first
// lexicographic pair winning ties (the historical ToricCode behavior).
template <typename Dist>
void greedy_match_into(const std::vector<uint32_t>& members, Dist&& distance,
                       std::vector<Match>& out) {
  std::vector<bool> used(members.size(), false);
  for (size_t matched = 0; matched < members.size(); matched += 2) {
    size_t best_i = 0, best_j = 0;
    size_t best = kInf;
    for (size_t i = 0; i < members.size(); ++i) {
      if (used[i]) continue;
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (used[j]) continue;
        const size_t d = distance(members[i], members[j]);
        if (d < best) {
          best = d;
          best_i = i;
          best_j = j;
        }
      }
    }
    used[best_i] = used[best_j] = true;
    out.push_back({members[best_i], members[best_j]});
  }
}

// Exact minimum-weight perfect matching over one cluster via DP on defect
// subsets: dp[S] = cheapest pairing of subset S, always extending by the
// lowest-indexed unmatched defect. O(2^k · k) time, O(2^k) space, so callers
// bound k by MwpmOptions::exact_limit.
void exact_match_into(const std::vector<uint32_t>& members,
                      const std::vector<size_t>& dist_matrix, size_t stride,
                      std::vector<Match>& out) {
  const size_t k = members.size();
  const uint32_t full = static_cast<uint32_t>((uint64_t{1} << k) - 1);
  std::vector<size_t> dp(static_cast<size_t>(full) + 1, kInf);
  std::vector<uint8_t> choice(static_cast<size_t>(full) + 1, 0);
  dp[0] = 0;
  for (uint32_t s = 1; s <= full; ++s) {
    if ((__builtin_popcount(s) & 1) != 0) continue;  // odd subsets unreachable
    const int i = __builtin_ctz(s);
    size_t best = kInf;
    uint8_t best_j = 0;
    for (uint32_t rest = s ^ (1u << i); rest != 0; rest &= rest - 1) {
      const int j = __builtin_ctz(rest);
      const size_t cost =
          dp[s ^ (1u << i) ^ (1u << j)] +
          dist_matrix[members[static_cast<size_t>(i)] * stride +
                      members[static_cast<size_t>(j)]];
      if (cost < best) {
        best = cost;
        best_j = static_cast<uint8_t>(j);
      }
    }
    dp[s] = best;
    choice[s] = best_j;
  }
  for (uint32_t s = full; s != 0;) {
    const int i = __builtin_ctz(s);
    const int j = choice[s];
    out.push_back({members[static_cast<size_t>(i)],
                   members[static_cast<size_t>(j)]});
    s ^= (1u << i) ^ (1u << j);
  }
}

struct Dsu {
  explicit Dsu(size_t n) : parent(n), odd(n, true) {
    for (size_t i = 0; i < n; ++i) parent[i] = static_cast<uint32_t>(i);
  }
  uint32_t find(uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  // Returns true when the union merged two odd-parity clusters.
  bool unite(uint32_t a, uint32_t b) {
    a = find(a);
    b = find(b);
    const bool both_odd = odd[a] && odd[b];
    parent[a] = b;
    odd[b] = odd[a] != odd[b];
    return both_odd;
  }
  std::vector<uint32_t> parent;
  std::vector<bool> odd;
};

}  // namespace

std::vector<Match> GreedyMatching::match(size_t num_defects,
                                         const DistanceFn& distance) const {
  FTQC_CHECK(num_defects % 2 == 0, "defects come in pairs");
  std::vector<uint32_t> members(num_defects);
  for (size_t i = 0; i < num_defects; ++i) members[i] = static_cast<uint32_t>(i);
  std::vector<Match> out;
  out.reserve(num_defects / 2);
  // The closest-pair scan revisits every surviving pair once per matched
  // pair; evaluating the caller's metric inside that scan costs O(n^3)
  // DistanceFn calls. Evaluate each unordered pair exactly once up front and
  // scan the buffer instead.
  std::vector<size_t> dist_matrix(num_defects * num_defects, 0);
  for (size_t i = 0; i < num_defects; ++i) {
    for (size_t j = i + 1; j < num_defects; ++j) {
      const size_t d = distance(i, j);
      dist_matrix[i * num_defects + j] = d;
      dist_matrix[j * num_defects + i] = d;
    }
  }
  greedy_match_into(
      members,
      [&](uint32_t a, uint32_t b) { return dist_matrix[a * num_defects + b]; },
      out);
  return out;
}

MwpmMatching::MwpmMatching(MwpmOptions options) : options_(options) {
  FTQC_CHECK(options_.exact_limit <= 26,
             "exact_limit above 26 needs >600MB DP tables (and 32-bit masks)");
}

std::vector<Match> MwpmMatching::match(size_t num_defects,
                                       const DistanceFn& distance) const {
  FTQC_CHECK(num_defects % 2 == 0, "defects come in pairs");
  std::vector<Match> out;
  if (num_defects == 0) return out;
  out.reserve(num_defects / 2);

  if (num_defects <= options_.exact_limit) {
    // Small instance: one dense metric evaluation feeds the subset-DP.
    std::vector<size_t> dist_matrix(num_defects * num_defects, 0);
    for (size_t i = 0; i < num_defects; ++i) {
      for (size_t j = i + 1; j < num_defects; ++j) {
        const size_t d = distance(i, j);
        dist_matrix[i * num_defects + j] = d;
        dist_matrix[j * num_defects + i] = d;
      }
    }
    std::vector<uint32_t> members(num_defects);
    for (size_t i = 0; i < num_defects; ++i) {
      members[i] = static_cast<uint32_t>(i);
    }
    exact_match_into(members, dist_matrix, num_defects, out);
    return out;
  }

  // Large instance: radius-ordered union-find clustering. Each unordered pair
  // is metric-evaluated exactly once and dropped into a bucket keyed by its
  // distance (8 bytes per edge — no dense n² matrix, no 24-byte Kruskal edge
  // list, no O(E log E) sort: the handful of distinct integer radii on a
  // torus keeps the bucket map tiny). Buckets are consumed in ascending
  // radius, merging clusters while at least one side still holds an odd
  // defect count, and the growth stops at the first radius where every
  // cluster is even — edges beyond that radius are never touched. Within a
  // bucket, insertion order is (i, j)-lexicographic, so the merge sequence is
  // identical to the former fully-sorted formulation.
  std::map<size_t, std::vector<std::pair<uint32_t, uint32_t>>> radius_buckets;
  for (uint32_t i = 0; i < num_defects; ++i) {
    for (uint32_t j = i + 1; j < num_defects; ++j) {
      radius_buckets[distance(i, j)].push_back({i, j});
    }
  }
  Dsu dsu(num_defects);
  size_t odd_clusters = num_defects;
  for (const auto& [radius, bucket] : radius_buckets) {
    (void)radius;
    if (odd_clusters == 0) break;
    for (const auto& [i, j] : bucket) {
      if (odd_clusters == 0) break;
      const uint32_t ra = dsu.find(i);
      const uint32_t rb = dsu.find(j);
      if (ra == rb || (!dsu.odd[ra] && !dsu.odd[rb])) continue;
      if (dsu.unite(ra, rb)) odd_clusters -= 2;
    }
  }
  FTQC_CHECK(odd_clusters == 0, "even defect total must cluster evenly");
  radius_buckets.clear();

  std::vector<std::vector<uint32_t>> clusters(num_defects);
  for (uint32_t i = 0; i < num_defects; ++i) {
    clusters[dsu.find(i)].push_back(i);
  }
  // Densify only inside a cluster: a k×k matrix in cluster-local indices,
  // k ≤ exact_limit on the exact path and rarely much larger on the greedy
  // one, instead of the former global n² matrix.
  std::vector<size_t> local;
  for (const auto& members : clusters) {
    if (members.empty()) continue;
    const size_t k = members.size();
    local.assign(k * k, 0);
    for (size_t a = 0; a < k; ++a) {
      for (size_t b = a + 1; b < k; ++b) {
        const size_t d = distance(members[a], members[b]);
        local[a * k + b] = d;
        local[b * k + a] = d;
      }
    }
    std::vector<uint32_t> local_ids(k);
    for (size_t a = 0; a < k; ++a) local_ids[a] = static_cast<uint32_t>(a);
    const size_t before = out.size();
    if (k <= options_.exact_limit) {
      exact_match_into(local_ids, local, k, out);
    } else {
      greedy_match_into(
          local_ids,
          [&](uint32_t a, uint32_t b) { return local[a * k + b]; }, out);
    }
    for (size_t m = before; m < out.size(); ++m) {
      out[m].a = members[out[m].a];
      out[m].b = members[out[m].b];
    }
  }
  return out;
}

size_t matching_cost(const std::vector<Match>& matches,
                     const DistanceFn& distance) {
  size_t total = 0;
  for (const Match& m : matches) total += distance(m.a, m.b);
  return total;
}

}  // namespace ftqc::decode
