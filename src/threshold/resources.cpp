#include "threshold/resources.h"

#include <algorithm>
#include <limits>

namespace ftqc::threshold {

ResourcePlan ResourceModel::plan(const FactoringWorkload& load, double eps_gate,
                                 double eps_store) const {
  ResourcePlan out;
  const size_t l_gate =
      gate_flow.levels_needed(eps_gate, load.target_gate_error());
  const size_t l_store =
      storage_flow.levels_needed(eps_store, load.target_storage_error());
  if (l_gate == std::numeric_limits<size_t>::max() ||
      l_store == std::numeric_limits<size_t>::max()) {
    out.feasible = false;
    return out;
  }
  out.levels = std::max(l_gate, l_store);
  out.block_size = concatenated_block_size(out.levels);
  out.gate_error_achieved = gate_flow.at_level(eps_gate, out.levels);
  out.storage_error_achieved = storage_flow.at_level(eps_store, out.levels);
  out.data_qubits = load.logical_qubits() * out.block_size;
  out.total_qubits = static_cast<size_t>(
      static_cast<double>(out.data_qubits) * ancilla_factor);
  out.feasible = true;
  return out;
}

}  // namespace ftqc::threshold
