#include "decode/matching.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace ftqc::decode {
namespace {

constexpr size_t kInf = std::numeric_limits<size_t>::max() / 2;

// Greedy core shared by the standalone strategy and the oversized-cluster
// fallback: repeatedly match the globally closest remaining pair, first
// lexicographic pair winning ties (the historical ToricCode behavior).
template <typename Dist>
void greedy_match_into(const std::vector<uint32_t>& members, Dist&& distance,
                       std::vector<Match>& out) {
  std::vector<bool> used(members.size(), false);
  for (size_t matched = 0; matched < members.size(); matched += 2) {
    size_t best_i = 0, best_j = 0;
    size_t best = kInf;
    for (size_t i = 0; i < members.size(); ++i) {
      if (used[i]) continue;
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (used[j]) continue;
        const size_t d = distance(members[i], members[j]);
        if (d < best) {
          best = d;
          best_i = i;
          best_j = j;
        }
      }
    }
    used[best_i] = used[best_j] = true;
    out.push_back({members[best_i], members[best_j]});
  }
}

// Exact minimum-weight perfect matching over one cluster via DP on defect
// subsets: dp[S] = cheapest pairing of subset S, always extending by the
// lowest-indexed unmatched defect. O(2^k · k) time, O(2^k) space, so callers
// bound k by MwpmOptions::exact_limit.
void exact_match_into(const std::vector<uint32_t>& members,
                      const std::vector<size_t>& dist_matrix, size_t stride,
                      std::vector<Match>& out) {
  const size_t k = members.size();
  const uint32_t full = static_cast<uint32_t>((uint64_t{1} << k) - 1);
  std::vector<size_t> dp(static_cast<size_t>(full) + 1, kInf);
  std::vector<uint8_t> choice(static_cast<size_t>(full) + 1, 0);
  dp[0] = 0;
  for (uint32_t s = 1; s <= full; ++s) {
    if ((__builtin_popcount(s) & 1) != 0) continue;  // odd subsets unreachable
    const int i = __builtin_ctz(s);
    size_t best = kInf;
    uint8_t best_j = 0;
    for (uint32_t rest = s ^ (1u << i); rest != 0; rest &= rest - 1) {
      const int j = __builtin_ctz(rest);
      const size_t cost =
          dp[s ^ (1u << i) ^ (1u << j)] +
          dist_matrix[members[static_cast<size_t>(i)] * stride +
                      members[static_cast<size_t>(j)]];
      if (cost < best) {
        best = cost;
        best_j = static_cast<uint8_t>(j);
      }
    }
    dp[s] = best;
    choice[s] = best_j;
  }
  for (uint32_t s = full; s != 0;) {
    const int i = __builtin_ctz(s);
    const int j = choice[s];
    out.push_back({members[static_cast<size_t>(i)],
                   members[static_cast<size_t>(j)]});
    s ^= (1u << i) ^ (1u << j);
  }
}

struct Dsu {
  explicit Dsu(size_t n) : parent(n), odd(n, true) {
    for (size_t i = 0; i < n; ++i) parent[i] = static_cast<uint32_t>(i);
  }
  uint32_t find(uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  // Returns true when the union merged two odd-parity clusters.
  bool unite(uint32_t a, uint32_t b) {
    a = find(a);
    b = find(b);
    const bool both_odd = odd[a] && odd[b];
    parent[a] = b;
    odd[b] = odd[a] != odd[b];
    return both_odd;
  }
  std::vector<uint32_t> parent;
  std::vector<bool> odd;
};

}  // namespace

std::vector<Match> GreedyMatching::match(size_t num_defects,
                                         const DistanceFn& distance) const {
  FTQC_CHECK(num_defects % 2 == 0, "defects come in pairs");
  std::vector<uint32_t> members(num_defects);
  for (size_t i = 0; i < num_defects; ++i) members[i] = static_cast<uint32_t>(i);
  std::vector<Match> out;
  out.reserve(num_defects / 2);
  greedy_match_into(members, distance, out);
  return out;
}

MwpmMatching::MwpmMatching(MwpmOptions options) : options_(options) {
  FTQC_CHECK(options_.exact_limit <= 26,
             "exact_limit above 26 needs >600MB DP tables (and 32-bit masks)");
}

std::vector<Match> MwpmMatching::match(size_t num_defects,
                                       const DistanceFn& distance) const {
  FTQC_CHECK(num_defects % 2 == 0, "defects come in pairs");
  std::vector<Match> out;
  if (num_defects == 0) return out;
  out.reserve(num_defects / 2);

  // One dense metric evaluation up front; both the DP and the clustering
  // reuse it, so the (possibly expensive) DistanceFn runs O(n^2) times total.
  std::vector<size_t> dist_matrix(num_defects * num_defects, 0);
  for (size_t i = 0; i < num_defects; ++i) {
    for (size_t j = i + 1; j < num_defects; ++j) {
      const size_t d = distance(i, j);
      dist_matrix[i * num_defects + j] = d;
      dist_matrix[j * num_defects + i] = d;
    }
  }

  if (num_defects <= options_.exact_limit) {
    std::vector<uint32_t> members(num_defects);
    for (size_t i = 0; i < num_defects; ++i) {
      members[i] = static_cast<uint32_t>(i);
    }
    exact_match_into(members, dist_matrix, num_defects, out);
    return out;
  }

  // Large instance: Kruskal-ordered union-find clustering. Cheap edges merge
  // clusters while at least one side still holds an odd defect count; once
  // every cluster is even the matching decomposes cluster-by-cluster.
  struct Edge {
    size_t d;
    uint32_t i;
    uint32_t j;
  };
  std::vector<Edge> edges;
  edges.reserve(num_defects * (num_defects - 1) / 2);
  for (uint32_t i = 0; i < num_defects; ++i) {
    for (uint32_t j = i + 1; j < num_defects; ++j) {
      edges.push_back({dist_matrix[i * num_defects + j], i, j});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.d != b.d) return a.d < b.d;
    if (a.i != b.i) return a.i < b.i;
    return a.j < b.j;
  });
  Dsu dsu(num_defects);
  size_t odd_clusters = num_defects;
  for (const Edge& e : edges) {
    if (odd_clusters == 0) break;
    const uint32_t ra = dsu.find(e.i);
    const uint32_t rb = dsu.find(e.j);
    if (ra == rb || (!dsu.odd[ra] && !dsu.odd[rb])) continue;
    if (dsu.unite(ra, rb)) odd_clusters -= 2;
  }
  FTQC_CHECK(odd_clusters == 0, "even defect total must cluster evenly");

  std::vector<std::vector<uint32_t>> clusters(num_defects);
  for (uint32_t i = 0; i < num_defects; ++i) {
    clusters[dsu.find(i)].push_back(i);
  }
  for (const auto& members : clusters) {
    if (members.empty()) continue;
    if (members.size() <= options_.exact_limit) {
      exact_match_into(members, dist_matrix, num_defects, out);
    } else {
      greedy_match_into(
          members,
          [&](uint32_t a, uint32_t b) {
            return dist_matrix[a * num_defects + b];
          },
          out);
    }
  }
  return out;
}

size_t matching_cost(const std::vector<Match>& matches,
                     const DistanceFn& distance) {
  size_t total = 0;
  for (const Match& m : matches) total += distance(m.a, m.b);
  return total;
}

}  // namespace ftqc::decode
