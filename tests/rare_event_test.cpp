// The rare-event measurement engine: binomial priors, the stratified
// estimator's exact-mixture property on toy gadgets with analytically known
// failure sets, chunk-boundary/seed determinism of the stratum samplers,
// budget-router behavior, and a direct-vs-stratified cross-check on the real
// level-1 Steane cycle.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.h"
#include "ft/fault_enumeration.h"
#include "ft/steane_recovery.h"
#include "sim/frame_sim.h"
#include "sim/rare_event.h"
#include "sim/shot_runner.h"
#include "threshold/pseudothreshold.h"

namespace ftqc::ft {
namespace {

// --- Toy gadgets with analytically known failure sets --------------------

// Five prep locations (one X variant each) on five qubits; the gadget fails
// iff locations {0,2} both fault OR {1,3,4} all fault. Under independent
// per-location faulting at ε the exact failure probability is
//   P = ε² + ε³ − ε⁵              (inclusion–exclusion on the two events).
bool toy5_fails(NoiseInjector& injector) {
  sim::FrameSim f(5, /*seed=*/1);
  for (uint32_t q = 0; q < 5; ++q) injector.on_prep(f, q);
  const bool a = f.destructive_z_flip(0) && f.destructive_z_flip(2);
  const bool b = f.destructive_z_flip(1) && f.destructive_z_flip(3) &&
                 f.destructive_z_flip(4);
  return a || b;
}

double toy5_analytic(double eps) {
  return eps * eps + eps * eps * eps - std::pow(eps, 5);
}

// One prep location and one 3-variant gate location; fails iff BOTH qubits
// carry an X component. The gate fault contributes X or Y (2 of 3 variants),
// so P = ε · ε · (2/3) — this pins the variant weighting.
bool toy_variant_fails(NoiseInjector& injector) {
  sim::FrameSim f(2, /*seed=*/1);
  injector.on_prep(f, 0);
  injector.on_gate1(f, 1);
  return f.destructive_z_flip(0) && f.destructive_z_flip(1);
}

// Fault-dependent control flow in miniature: five prep locations on the
// noiseless path, but qubit 0's preparation is VERIFIED — a flip is
// detected, discarded and re-prepared once, adding a sixth location to the
// realized path (the cat-retry loops of the real gadgets, scaled down).
// Failure = final q0 flip AND q1 flip, which needs the first q0 prep faulty
// (to open the retry), the retry prep faulty, and q1 faulty:
//   P = ε³ exactly.
bool adaptive_toy_fails(NoiseInjector& injector) {
  sim::FrameSim f(5, /*seed=*/1);
  injector.on_prep(f, 0);
  if (f.destructive_z_flip(0)) {
    f.reset(0);              // verification caught the flip: discard...
    injector.on_prep(f, 0);  // ...and retry — the path grew by a location
  }
  for (uint32_t q = 1; q < 5; ++q) injector.on_prep(f, q);
  return f.destructive_z_flip(0) && f.destructive_z_flip(1);
}

// --- Binomial prior ------------------------------------------------------

TEST(BinomialPmf, MatchesSmallClosedForms) {
  EXPECT_NEAR(sim::binomial_pmf(2, 0, 0.25), 0.5625, 1e-12);
  EXPECT_NEAR(sim::binomial_pmf(2, 1, 0.25), 0.375, 1e-12);
  EXPECT_NEAR(sim::binomial_pmf(2, 2, 0.25), 0.0625, 1e-12);
  // Degenerate p.
  EXPECT_EQ(sim::binomial_pmf(5, 0, 0.0), 1.0);
  EXPECT_EQ(sim::binomial_pmf(5, 1, 0.0), 0.0);
  EXPECT_EQ(sim::binomial_pmf(5, 5, 1.0), 1.0);
  // k beyond n.
  EXPECT_EQ(sim::binomial_pmf(3, 4, 0.1), 0.0);
}

TEST(BinomialPmf, SumsToOneAndSurvivesLargeN) {
  double total = 0;
  for (size_t k = 0; k <= 60; ++k) total += sim::binomial_pmf(60000, k, 1e-4);
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Far-tail terms must underflow gracefully, not overflow the binomial
  // coefficient (C(60000, 250) alone is astronomically large).
  const double tail = sim::binomial_pmf(60000, 250, 1e-4);
  EXPECT_GT(tail, 0.0);
  EXPECT_LT(tail, 1e-250);
  // Beyond double range the pmf flushes to zero instead of misbehaving.
  EXPECT_EQ(sim::binomial_pmf(60000, 400, 1e-4), 0.0);
}

// --- Exact mixture property ----------------------------------------------

TEST(StratifiedMixture, ExhaustiveStrataReproduceBinomialMixtureExactly) {
  const FaultUniverse universe =
      record_fault_universe(toy5_fails, ScanOptions{});
  ASSERT_EQ(universe.size(), 5u);
  for (const double eps : {0.3, 0.05, 0.004}) {
    double mixture = 0;
    for (size_t k = 0; k <= 5; ++k) {
      const ExhaustiveSetScan scan = scan_fault_sets(toy5_fails, universe, k);
      mixture += sim::binomial_pmf(5, k, eps) * scan.conditional_failure();
    }
    EXPECT_NEAR(mixture, toy5_analytic(eps), 1e-12) << "eps " << eps;
  }
}

TEST(StratifiedMixture, VariantWeightsEnterTheConditional) {
  const FaultUniverse universe =
      record_fault_universe(toy_variant_fails, ScanOptions{});
  ASSERT_EQ(universe.size(), 2u);
  const ExhaustiveSetScan pairs = scan_fault_sets(toy_variant_fails, universe, 2);
  // Of the 1 × 3 two-fault configurations, the X and Y gate variants fail.
  EXPECT_EQ(pairs.sets_tried, 3u);
  EXPECT_NEAR(pairs.conditional_failure(), 2.0 / 3.0, 1e-12);
  for (const double eps : {0.2, 0.01}) {
    const double mixture =
        sim::binomial_pmf(2, 2, eps) * pairs.conditional_failure();
    EXPECT_NEAR(mixture, eps * eps * (2.0 / 3.0), 1e-12);
  }
}

// --- Sampled estimator ---------------------------------------------------

TEST(RareEventSweep, ResolvesToyRatesDownTo1em10) {
  // Pinning k = 1 is what makes the 1e-10 point resolvable: a sampled
  // stratum can only bound its conditional by a Wilson interval, and at
  // ε = 1e-5 the k = 1 prior weight (~5e-5) times any honest interval
  // swamps a 1e-10 mean. The exhaustive scan PROVES the stratum is zero.
  const FaultUniverse universe =
      record_fault_universe(toy5_fails, ScanOptions{});
  ASSERT_EQ(scan_fault_sets(toy5_fails, universe, 1).sets_failing, 0u);

  RareEventOptions options;
  options.max_faults = 3;
  options.known_zero_max_k = 1;
  options.budget = 8000;
  options.chunk = 64;
  options.seed = 7;
  const std::vector<double> eps = {1e-2, 1e-5};
  const RareEventSweep sweep =
      estimate_rare_failure_sweep(toy5_fails, eps, options);

  ASSERT_EQ(sweep.estimates.size(), 2u);
  EXPECT_EQ(sweep.n_eff, 5.0);
  for (size_t i = 0; i < eps.size(); ++i) {
    const auto& est = sweep.estimates[i];
    const double truth = toy5_analytic(eps[i]);
    EXPECT_NEAR(est.mean, truth, est.halfwidth) << "eps " << eps[i];
    EXPECT_LT(est.relative_halfwidth(), 0.30) << "eps " << eps[i];
  }
  // The ε = 1e-5 point sits at ~1e-10 — five orders below the direct-MC
  // floor reachable with this budget of 8000 replays.
  EXPECT_LT(sweep.estimates[1].mean, 2e-10);
  EXPECT_GT(sweep.estimates[1].mean, 0.5e-10);
  // Stratum 0 was pinned by the noiseless replay, not sampled.
  EXPECT_EQ(sweep.strata[0].trials, 0u);
  EXPECT_LE(sweep.shots, options.budget);
}

TEST(RareEventSweep, DeterministicForEqualSeeds) {
  RareEventOptions options;
  options.max_faults = 3;
  options.budget = 1500;
  options.seed = 7;
  const std::vector<double> eps = {1e-3, 1e-6};
  const RareEventSweep a = estimate_rare_failure_sweep(toy5_fails, eps, options);
  const RareEventSweep b = estimate_rare_failure_sweep(toy5_fails, eps, options);
  ASSERT_EQ(a.estimates.size(), b.estimates.size());
  for (size_t i = 0; i < a.estimates.size(); ++i) {
    EXPECT_EQ(a.estimates[i].mean, b.estimates[i].mean);
    EXPECT_EQ(a.estimates[i].halfwidth, b.estimates[i].halfwidth);
  }
  for (size_t k = 0; k < a.strata.size(); ++k) {
    EXPECT_EQ(a.strata[k].successes, b.strata[k].successes);
    EXPECT_EQ(a.strata[k].trials, b.strata[k].trials);
  }
}

TEST(FaultSetSampler, ChunkBoundariesDoNotChangeTheSample) {
  const FaultUniverse universe =
      record_fault_universe(toy5_fails, ScanOptions{});
  const uint64_t seed = 99;
  const FaultSetScan whole =
      sample_fault_sets(toy5_fails, universe, 2, 800, 0, seed);
  FaultSetScan split;
  for (const auto& [first, n] :
       {std::pair<size_t, size_t>{0, 300}, {300, 200}, {500, 300}}) {
    const FaultSetScan chunk =
        sample_fault_sets(toy5_fails, universe, 2, n, first, seed);
    split.sets_sampled += chunk.sets_sampled;
    split.sets_failing += chunk.sets_failing;
  }
  EXPECT_EQ(whole.sets_sampled, split.sets_sampled);
  EXPECT_EQ(whole.sets_failing, split.sets_failing);
  // And the sampled fraction really converges on the exhaustive conditional.
  const ExhaustiveSetScan exact = scan_fault_sets(toy5_fails, universe, 2);
  EXPECT_NEAR(whole.proportion().mean(), exact.conditional_failure(),
              3 * whole.proportion().wilson_halfwidth());
}

TEST(ConditionedSampler, ChunkBoundariesDoNotChangeTheSample) {
  const uint64_t seed = 77;
  const ConditionedSetScan whole = sample_conditioned_fault_sets(
      adaptive_toy_fails, all_kinds(), /*q=*/0.4, /*k=*/2, 900, 0, seed);
  EXPECT_EQ(whole.raw_shots, 900u);
  EXPECT_GT(whole.accepted, 0u);
  EXPECT_EQ(whole.accepted_locations.size(), whole.accepted);
  ConditionedSetScan split;
  for (const auto& [first, n] :
       {std::pair<size_t, size_t>{0, 400}, {400, 100}, {500, 400}}) {
    const ConditionedSetScan chunk = sample_conditioned_fault_sets(
        adaptive_toy_fails, all_kinds(), 0.4, 2, n, first, seed);
    split.raw_shots += chunk.raw_shots;
    split.accepted += chunk.accepted;
    split.accepted_failing += chunk.accepted_failing;
    split.accepted_locations.insert(split.accepted_locations.end(),
                                    chunk.accepted_locations.begin(),
                                    chunk.accepted_locations.end());
    split.accepted_failing_mask.insert(split.accepted_failing_mask.end(),
                                       chunk.accepted_failing_mask.begin(),
                                       chunk.accepted_failing_mask.end());
  }
  EXPECT_EQ(whole.raw_shots, split.raw_shots);
  EXPECT_EQ(whole.accepted, split.accepted);
  EXPECT_EQ(whole.accepted_failing, split.accepted_failing);
  EXPECT_EQ(whole.accepted_locations, split.accepted_locations);
  EXPECT_EQ(whole.accepted_failing_mask, split.accepted_failing_mask);
}

TEST(ConditionedSampler, FixedPathConditionalMatchesExhaustive) {
  // On a gadget WITHOUT fault-dependent control flow, accepting exactly-k
  // Bernoulli shots is the same distribution as drawing a uniform k-subset
  // of the noiseless path; the conditional must converge on the exhaustive
  // scan's value, and every accepted shot must see the fixed path length.
  const FaultUniverse universe =
      record_fault_universe(toy5_fails, ScanOptions{});
  const ExhaustiveSetScan exact = scan_fault_sets(toy5_fails, universe, 2);
  const ConditionedSetScan cond = sample_conditioned_fault_sets(
      toy5_fails, all_kinds(), /*q=*/0.4, /*k=*/2, 4000, 0, /*seed=*/123);
  ASSERT_GT(cond.accepted, 500u);
  for (const size_t n_s : cond.accepted_locations) EXPECT_EQ(n_s, 5u);
  EXPECT_NEAR(cond.proportion().mean(), exact.conditional_failure(),
              3 * cond.proportion().wilson_halfwidth());
}

TEST(StratifiedEstimator, RejectionSamplersAreChargedRawShots) {
  // A sampler that accepts half its proposals: the budget and the
  // first_shot offsets advance by the RAW count, so replay cost stays
  // honest and per-shot seeds never repeat across chunks.
  std::vector<size_t> offsets;
  sim::StratifiedEstimator estimator(
      1, [&](size_t, size_t shots, size_t first_shot) {
        offsets.push_back(first_shot);
        return sim::StratumChunk{Proportion{0, shots / 2}, shots};
      });
  (void)estimator.add_view({1.0});
  sim::StratifiedPlan plan;
  plan.budget = 100;
  plan.chunk = 40;
  estimator.run(plan);
  EXPECT_EQ(estimator.total_shots(), 100u);             // raw, not accepted
  EXPECT_EQ(estimator.stratum(0).sampled.trials, 50u);  // accepted
  EXPECT_EQ(offsets, (std::vector<size_t>{0, 40, 80}));
}

TEST(RareEventSweep, AdaptivePathRetryGadgetIsUnbiased) {
  // Regression for the two biases of noiseless-path fault arming on
  // adaptive gadgets (funneling into retry windows; binomial-prior
  // underdispersion): the runtime-conditioned sampler with likelihood-ratio
  // weights must land on the analytic ε³ of the retry toy, whose failure
  // set lives partly INSIDE the fault-opened retry location.
  const double eps = 0.05;
  // k = 1 pin is legitimate on adaptive gadgets too: with one fault total,
  // the path up to that fault is the noiseless path, so the exhaustive
  // noiseless-path scan covers every reachable single-fault configuration.
  const FaultUniverse universe =
      record_fault_universe(adaptive_toy_fails, ScanOptions{});
  ASSERT_EQ(universe.size(), 5u);
  ASSERT_EQ(scan_fault_sets(adaptive_toy_fails, universe, 1).sets_failing, 0u);

  RareEventOptions options;
  options.max_faults = 4;
  options.known_zero_max_k = 1;
  options.budget = 20000;
  options.seed = 31;
  const RareEventSweep sweep =
      estimate_rare_failure_sweep(adaptive_toy_fails, {eps}, options);
  const double truth = eps * eps * eps;
  EXPECT_NEAR(sweep.estimates[0].mean, truth, sweep.estimates[0].halfwidth);
  EXPECT_LT(sweep.estimates[0].relative_halfwidth(), 0.5);
  // The whole raw budget was spent, and accounted for per stratum.
  EXPECT_EQ(sweep.shots, 20000u);
  size_t raw_total = 0;
  for (const size_t r : sweep.raw_shots) raw_total += r;
  EXPECT_EQ(raw_total, sweep.shots);
}

TEST(ShotRunnerRange, SerialAndBlockExecutionAgree) {
  // A pure function of the per-shot seed must count identically through the
  // serial range loop and the block-decomposed loop (lane i of a block at
  // absolute index `first` sees seed_for(first + i)) — this is what lets a
  // stratum run batched without changing its estimate.
  const auto shot_fails = [](uint64_t seed) -> bool {
    uint64_t z = seed * 0x2545F4914F6CDD1Dull;
    z ^= z >> 29;
    return (z & 7) == 0;
  };
  sim::ShotPlan plan;
  plan.seed = 404;
  plan.seed_stride = 17;
  plan.block_shots = 64;
  const sim::ShotRunner runner(plan);
  for (const size_t first : {size_t{0}, size_t{64}, size_t{1000}}) {
    const sim::ShotResult serial = runner.run_range(first, 512, shot_fails);
    const sim::ShotResult blocks = runner.run_range_blocks(
        first, 512, [&](uint64_t block_seed, size_t n) {
          uint64_t failures = 0;
          for (size_t i = 0; i < n; ++i) {
            failures += shot_fails(block_seed + plan.seed_stride * i);
          }
          return failures;
        });
    EXPECT_EQ(serial.failures(), blocks.failures()) << "first " << first;
    EXPECT_EQ(serial.trials, blocks.trials);
  }
}

TEST(ShotPlanStrata, StrataGetDecorrelatedSeedStreams) {
  sim::ShotPlan plan;
  plan.seed = 1;
  const uint64_t s1 = plan.for_stratum(1).seed;
  const uint64_t s2 = plan.for_stratum(2).seed;
  EXPECT_NE(s1, s2);
  EXPECT_NE(s1, plan.seed);
  // Same stratum, same sub-seed (reproducibility).
  EXPECT_EQ(plan.for_stratum(1).seed, s1);
}

// --- Budget router -------------------------------------------------------

TEST(BudgetRouter, RoutesToWidestArmAndHonorsTarget) {
  // Arm widths shrink as 1/shots; arm 0 starts 10x wider.
  std::vector<size_t> spent(2, 0);
  sim::BudgetRouter router;
  for (size_t i = 0; i < 2; ++i) {
    const double scale = i == 0 ? 10.0 : 1.0;
    router.add_arm({"arm",
                    [&spent, i, scale] {
                      return scale / static_cast<double>(1 + spent[i]);
                    },
                    [&spent, i](size_t n) {
                      spent[i] += n;
                      return n;
                    }});
  }
  // Driving both arms to 0.05 needs ~200 + ~20 shots; 400 is ample.
  const size_t total = router.run(/*budget=*/400, /*chunk=*/10, /*target=*/0.05);
  EXPECT_EQ(total, spent[0] + spent[1]);
  EXPECT_GT(spent[0], spent[1]);  // the wide arm got the larger share
  // Both arms were driven to the target, and the leftover budget unspent.
  EXPECT_LE(10.0 / (1 + spent[0]), 0.05);
  EXPECT_LE(1.0 / (1 + spent[1]), 0.05);
  EXPECT_LT(total, 400u);
}

TEST(BudgetRouter, RetiresRefusingArmsInsteadOfSpinning) {
  size_t granted = 0;
  sim::BudgetRouter router;
  router.add_arm({"refuses", [] { return 1.0; }, [](size_t) { return size_t{0}; }});
  router.add_arm({"works", [] { return 0.5; },
                  [&granted](size_t n) {
                    granted += n;
                    return n;
                  }});
  const size_t total = router.run(/*budget=*/40, /*chunk=*/8, /*target=*/0);
  EXPECT_EQ(total, 40u);
  EXPECT_EQ(granted, 40u);
}

TEST(StratifiedEstimator, KnownZeroStrataAreNeverSampled) {
  size_t calls_to_stratum1 = 0;
  sim::StratifiedEstimator estimator(
      3, [&](size_t stratum, size_t shots, size_t) {
        if (stratum == 1) ++calls_to_stratum1;
        return sim::StratumChunk{Proportion{0, shots}, shots};
      });
  estimator.mark_known_zero(0);
  estimator.mark_known_zero(1);
  (void)estimator.add_view({0.9, 0.09, 0.01});
  sim::StratifiedPlan plan;
  plan.budget = 200;
  plan.chunk = 50;
  estimator.run(plan);
  EXPECT_EQ(calls_to_stratum1, 0u);
  EXPECT_EQ(estimator.stratum(1).sampled.trials, 0u);
  EXPECT_EQ(estimator.stratum(2).sampled.trials, 200u);
  // Pinned strata contribute no width: only stratum 2's interval remains.
  const auto est = estimator.estimate(0);
  EXPECT_EQ(est.mean, 0.0);
  const Proportion zero_of_200{0, 200};
  EXPECT_NEAR(est.halfwidth, 0.01 * zero_of_200.wilson_halfwidth(), 1e-15);
}

// --- Overlap-regime validation on a real gadget --------------------------

// At ε = 3e-3 the level-1 Steane cycle is measurable both ways; the
// stratified estimate must agree with direct Monte Carlo within ~2σ. (The
// full ε = 1e-3 battery, including the level-2 gadgets, runs in BENCH_E18.)
TEST(RareEventValidation, SteaneCycleMatchesDirectMonteCarlo) {
  const double eps = 3e-3;
  const auto noise = sim::NoiseParams::uniform_gate(eps, /*eps_store=*/0.0);

  const auto direct = threshold::measure_cycle_failure(
      threshold::RecoveryMethod::kSteane, eps, /*shots=*/40000, /*seed=*/5);

  const GadgetExperiment experiment = [](NoiseInjector& injector) {
    SteaneRecovery rec(sim::NoiseParams{}, RecoveryPolicy{}, /*seed=*/77);
    rec.set_injector(&injector);
    rec.run_cycle();
    rec.set_injector(nullptr);
    return rec.any_logical_error();
  };
  RareEventOptions options;
  options.scan.filter = gate_kinds_only();  // eps_store = 0 in the MC run
  // At ε = 3e-3 the Steane cycle's N·ε is order 1, so meaningful prior mass
  // sits out to k ~ 8; stopping earlier would put that mass in the tail
  // bound and blow up the interval.
  options.max_faults = 8;
  options.known_zero_max_k = 1;  // proven by the exhaustive single-fault scan
  options.budget = 16000;
  options.seed = 11;
  options.n_eff_override = calibrate_mean_locations(
      [](NoiseInjector& injector, uint64_t seed) {
        SteaneRecovery rec(sim::NoiseParams{}, RecoveryPolicy{}, seed);
        rec.set_injector(&injector);
        rec.run_cycle();
        rec.set_injector(nullptr);
        return rec.any_logical_error();
      },
      noise, gate_kinds_only(), /*num_shots=*/200, /*seed=*/3);
  const RareEventSweep sweep =
      estimate_rare_failure_sweep(experiment, {eps}, options);

  const double diff = std::abs(sweep.estimates[0].mean -
                               direct.failures.mean());
  const double combined =
      std::sqrt(sweep.estimates[0].halfwidth * sweep.estimates[0].halfwidth +
                direct.failures.wilson_halfwidth() *
                    direct.failures.wilson_halfwidth());
  // Pure statistical agreement — both 95% intervals combined in quadrature,
  // no bias allowance. The runtime-conditioned sampler places faults on the
  // path the gadget actually takes (retry windows included) and weighs
  // strata by the likelihood-ratio estimate of P(K = k), so the earlier
  // noiseless-path-arming biases (funneling into retry windows, binomial
  // underdispersion) are gone; the seeds here are fixed, so this either
  // holds deterministically or flags a real regression.
  EXPECT_LE(diff, combined)
      << "stratified " << sweep.estimates[0].mean << " vs direct "
      << direct.failures.mean();
  EXPECT_LT(sweep.estimates[0].relative_halfwidth(), 0.5);
}

}  // namespace
}  // namespace ftqc::ft
