#include <gtest/gtest.h>

#include "codes/library.h"
#include "ft/fault_enumeration.h"
#include "ft/generic_recovery.h"
#include "sim/runner.h"
#include "sim/statevector_sim.h"

namespace ftqc::ft {
namespace {

const sim::NoiseParams kNoiseless{};

TEST(ControlledPauli, CYDecompositionMatchesDirectConstruction) {
  // Verify (I⊗S) CX (I⊗S†) == controlled-Y on the state-vector engine.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    sim::Circuit prep(2);
    Rng rng(seed);
    for (uint32_t q = 0; q < 2; ++q) {
      if (rng.bernoulli(0.5)) prep.h(q);
      if (rng.bernoulli(0.5)) prep.s(q);
      if (rng.bernoulli(0.5)) prep.x(q);
    }
    sim::StateVectorSim a(2, seed), b(2, seed);
    run_circuit(a, prep);
    run_circuit(b, prep);
    sim::Circuit cy(2);
    append_controlled_pauli(cy, 0, 1, 'Y');
    run_circuit(a, cy);
    // Independent reference: CZ·CX acts on the control-|1> block as
    // Z·X = iY, so CY = S†_control · CZ · CX (the S† cancels the i).
    sim::Circuit ref(2);
    ref.cx(0, 1);
    ref.cz(0, 1);
    ref.s_dag(0);
    run_circuit(b, ref);
    EXPECT_NEAR(a.fidelity_with(b), 1.0, 1e-9) << "seed " << seed;
  }
}

TEST(GenericShorRecovery, NoiselessCycleCleanOnEveryLibraryCode) {
  for (const auto* code : {&codes::five_qubit(), &codes::steane(),
                           &codes::shor9(), &codes::hamming15()}) {
    GenericShorRecovery rec(*code, kNoiseless, RecoveryPolicy{}, 3);
    rec.run_cycle();
    EXPECT_FALSE(rec.any_logical_error()) << code->name();
    EXPECT_TRUE(rec.residual().is_identity()) << code->name();
  }
}

TEST(GenericShorRecovery, CorrectsAllSingleErrorsOnFiveQubitCode) {
  const auto& code = codes::five_qubit();
  for (uint32_t q = 0; q < 5; ++q) {
    for (char pauli : {'X', 'Y', 'Z'}) {
      GenericShorRecovery rec(code, kNoiseless, RecoveryPolicy{}, 11 + q);
      rec.inject_data(q, pauli);
      rec.run_cycle();
      EXPECT_FALSE(rec.any_logical_error())
          << pauli << " on qubit " << q << " of " << code.name();
    }
  }
}

TEST(GenericShorRecovery, CorrectsAllSingleErrorsOnHamming15) {
  const auto& code = codes::hamming15();
  for (uint32_t q = 0; q < 15; ++q) {
    for (char pauli : {'X', 'Y', 'Z'}) {
      GenericShorRecovery rec(code, kNoiseless, RecoveryPolicy{}, 23 + q);
      rec.inject_data(q, pauli);
      rec.run_cycle();
      EXPECT_FALSE(rec.any_logical_error())
          << pauli << " on qubit " << q << " of " << code.name();
    }
  }
}

TEST(GenericShorRecovery, FiveQubitSurvivesEverySingleFault) {
  // §4.2: fault-tolerant computation is possible with ANY stabilizer code —
  // here the single-fault property for the non-CSS five-qubit code.
  const auto scan = scan_single_faults(
      [](NoiseInjector& injector) {
        GenericShorRecovery rec(codes::five_qubit(), kNoiseless,
                                RecoveryPolicy{}, 31);
        rec.set_injector(&injector);
        rec.run_cycle();
        rec.set_injector(nullptr);
        return rec.any_logical_error();
      },
      all_kinds());
  EXPECT_GT(scan.num_locations, 80u);
  EXPECT_EQ(scan.faults_failing, 0u)
      << "single fault broke the generic Shor recovery";
}

TEST(GenericShorRecovery, SteaneCodeAgreesWithSpecializedDriver) {
  // The generic driver on the Steane code has the same qualitative failure
  // law as the specialized one: clean on no noise, quadratic under noise.
  const auto noise = sim::NoiseParams::uniform_gate(2e-3);
  size_t failures = 0;
  const size_t shots = 4000;
  for (size_t s = 0; s < shots; ++s) {
    GenericShorRecovery rec(codes::steane(), noise, RecoveryPolicy{}, 100 + s);
    rec.run_cycle();
    failures += rec.any_logical_error();
  }
  const double rate = static_cast<double>(failures) / shots;
  EXPECT_LT(rate, 0.05);  // far below the O(eps) a non-FT circuit would show
}

TEST(GenericShorRecovery, MixedGeneratorWidthUsesMatchingCatWidth) {
  // Five-qubit generators have weight 4: the cat register must be 4 wide.
  GenericShorRecovery rec(codes::five_qubit(), kNoiseless, RecoveryPolicy{}, 5);
  EXPECT_EQ(rec.frame().num_qubits(), 5u + 4u + 1u);
}

}  // namespace
}  // namespace ftqc::ft
