// Micro-benchmark for the BatchFrameSim hot paths: the stochastic channels
// (whose RNG now runs one geometric-skip stream per channel call into a
// reusable hit buffer, instead of restarting the stream per 64-lane word)
// and the full bit-parallel Fig. 9 recovery cycle they feed. Reports
// lane-channel applications per second so the rolling-baseline trend step
// catches regressions in the word-op kernels themselves, independently of
// any recovery driver.
#include <chrono>
#include <cstdio>

#include "bench_harness.h"
#include "common/table.h"
#include "ft/batch_recovery.h"
#include "sim/batch_frame_sim.h"
#include "sim/noise_model.h"

namespace {

using namespace ftqc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "BATCHSIM");
  std::printf(
      "BATCHSIM: BatchFrameSim channel kernels + bit-parallel recovery\n"
      "cycle. Channel rows are lane-applications/sec (qubits x shots x reps\n"
      "/ wall clock) at the library's typical error rates.\n\n");

  constexpr size_t kQubits = 32;
  const size_t shots = ftqc::bench::scaled(1 << 18, 1 << 13);
  const size_t reps = ftqc::bench::scaled(64, 8);
  sim::BatchFrameSim sim(kQubits, shots, /*seed=*/12345);
  const double lanes =
      static_cast<double>(sim.num_shots()) * kQubits * static_cast<double>(reps);

  ftqc::bench::JsonResult json;
  ftqc::Table table({"channel", "p", "lane-apps/sec"});
  const auto bench_channel = [&](const char* name, double p, auto&& apply) {
    const auto start = Clock::now();
    for (size_t r = 0; r < reps; ++r) {
      for (size_t q = 0; q < kQubits; ++q) apply(q, p);
    }
    const double rate = lanes / seconds_since(start);
    table.add_row({name, ftqc::strfmt("%.0e", p), ftqc::strfmt("%.3g", rate)});
    json.add(std::string(name) + "_lanes_per_sec", rate);
  };
  bench_channel("depolarize1", 1e-3,
                [&](size_t q, double p) { sim.depolarize1(q, p); });
  bench_channel("x_error", 1e-3,
                [&](size_t q, double p) { sim.x_error(q, p); });
  bench_channel("depolarize2", 1e-3, [&](size_t q, double p) {
    sim.depolarize2(q, (q + 1) % kQubits, p);
  });
  // A denser regime (storage-noise scale sweeps) to catch regressions in
  // the per-hit-lane flavor picking, not just the skip stream.
  bench_channel("depolarize1_dense", 2e-2,
                [&](size_t q, double p) { sim.depolarize1(q, p); });
  table.print();

  // End-to-end: the full bit-parallel recovery cycle these kernels feed.
  const size_t cycle_shots = ftqc::bench::scaled(1 << 16, 1 << 10);
  const auto noise = sim::NoiseParams::uniform_gate(1e-3);
  const auto start = Clock::now();
  ft::BatchSteaneRecovery rec(noise, ft::RecoveryPolicy{}, cycle_shots,
                              /*seed=*/7);
  rec.run_cycle();
  const double cycle_sps =
      static_cast<double>(rec.num_shots()) / seconds_since(start);
  (void)rec.count_any_logical_error();
  std::printf("\nBatchSteaneRecovery cycle: %.3g shots/sec (%zu shots)\n",
              cycle_sps, rec.num_shots());
  json.add("cycle_shots_per_sec", cycle_sps);
  json.write();
  return 0;
}
