#include "codes/lookup_decoder.h"

#include <vector>

#include "common/check.h"

namespace ftqc::codes {

using pauli::PauliString;

LookupDecoder::LookupDecoder(const StabilizerCode& code)
    : code_(code), identity_(code.n()) {
  FTQC_CHECK(code.num_generators() <= 63, "syndrome too wide for lookup table");
  const size_t num_syndromes = size_t{1} << code.num_generators();
  table_.reserve(num_syndromes);
  table_.emplace(0, identity_);

  // Breadth-first search on the syndrome space with single-site Paulis as
  // edges. Each step changes one site, so the first visit to a syndrome
  // happens at a depth equal to the minimum error weight for that syndrome:
  // the stored representative is a true minimum-weight correction.
  std::vector<PauliString> frontier = {identity_};
  while (table_.size() < num_syndromes && !frontier.empty()) {
    std::vector<PauliString> next;
    for (const auto& base : frontier) {
      for (size_t q = 0; q < code_.n(); ++q) {
        for (char c : {'X', 'Y', 'Z'}) {
          if (base.pauli_at(q) == c) continue;
          PauliString e = base;
          e.set_pauli(q, c);
          const uint64_t key = code_.syndrome(e).to_u64();
          if (table_.emplace(key, e).second) next.push_back(e);
        }
      }
    }
    frontier = std::move(next);
  }
}

const PauliString& LookupDecoder::decode(const gf2::BitVec& syndrome) const {
  const auto it = table_.find(syndrome.to_u64());
  return it == table_.end() ? identity_ : it->second;
}

StabilizerCode::LogicalEffect LookupDecoder::residual_effect(
    const PauliString& error) const {
  const PauliString& correction = decode(code_.syndrome(error));
  const PauliString residual = error * correction;
  return code_.logical_effect(residual);
}

}  // namespace ftqc::codes
