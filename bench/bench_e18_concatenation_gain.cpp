// E18 (§5): the point of concatenation, measured at circuit level — compare
// the logical failure of one fault-tolerant recovery cycle on a level-1
// Steane block against a full level-2 (49-qubit) block, across the
// pseudothreshold. Above it, the bigger code is WORSE ("coding will make
// things worse instead of better"); below it, level 2 wins and the gain
// grows as eps shrinks — the mechanism behind the accuracy threshold.
//
// The level-2 gadget runs under BOTH disciplines side by side: the bare
// "all levels simultaneously" extraction and the extended-rectangle (exRec)
// interleave of level-1 recoveries inside the level-2 ancilla preparation.
// The exhaustive fault enumeration (tests/ft_concatenated_test.cpp) shows
// why the disciplines differ at O(eps^2): the bare gadget's malignant
// pairs put one fault in each of the two ancilla preparations.
//
// Both levels ride the ShotRunner engine parameter. Under --engine=batch
// (the default) the level-2 sweep runs BatchLevel2Recovery — the whole
// exRec cycle at 64 shots/word, nested level-1 recoveries included — which
// buys 4x the level-2 shot budget AND a frame-vs-batch cross-check at
// eps = 1e-3 whose speedup and agreement land in BENCH_E18.json
// (batch_speedup, cross_engine_sigma).
//
// Every measurement — each (level, discipline, eps) cell and each
// rare-event stratification — is one point on the work-stealing sweep
// scheduler (sim/sweep_scheduler.h). Points keep their legacy seeds and run
// their shot loops serially, so the sweep's values are independent of the
// worker count and of kill/resume splits: under --checkpoint-dir a killed
// run resumes from its BENCH_E18.<id>.json shards and reproduces the
// straight-through BENCH_E18.json statistics exactly.
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table.h"
#include "ft/batch_level2.h"
#include "ft/concatenated_recovery.h"
#include "ft/fault_enumeration.h"
#include "ft/steane_recovery.h"
#include "sim/shot_runner.h"
#include "sim/sweep_scheduler.h"
#include "threshold/pseudothreshold.h"

namespace {

using namespace ftqc;
using namespace ftqc::ft;

// Level 1 is exactly the pseudothreshold cycle measurement, so it rides the
// shared ShotRunner path and its engine parameter (batch by default: the
// level-1 curve is the shot-hungry side of this comparison). The shot loop
// runs serial (parallel = false): the sweep scheduler owns the threads.
threshold::CyclePoint level1_failure(double eps, size_t shots, uint64_t seed,
                                     sim::ShotEngine engine) {
  return threshold::measure_cycle_failure(threshold::RecoveryMethod::kSteane,
                                          eps, shots, seed, 0.0, engine,
                                          /*parallel=*/false);
}

struct Level2Point {
  Proportion failures;
  double seconds = 0;
};

// The 49-qubit level-2 gadget on either engine: serial Level2Recovery per
// shot, or BatchLevel2Recovery replaying the whole (exRec) cycle at 64
// shots/word with nested lane-masked level-1 recoveries.
Level2Point level2_failure(double eps, size_t shots, uint64_t seed,
                           Level2Discipline discipline,
                           sim::ShotEngine engine) {
  const auto noise = sim::NoiseParams::uniform_gate(eps);
  RecoveryPolicy policy;
  policy.level2_discipline = discipline;
  sim::ShotPlan plan;
  plan.shots = shots;
  plan.seed = seed;
  plan.seed_stride = 11;
  plan.engine = engine;
  plan.block_shots = 1024;  // 161-qubit registers: keep per-block memory flat
  plan.parallel = false;
  const sim::ShotRunner runner(plan);
  const auto result = runner.run(
      [&](uint64_t shot_seed) {
        Level2Recovery rec(noise, policy, shot_seed);
        rec.run_cycle();
        return rec.any_logical_error();
      },
      [&](uint64_t block_seed, size_t block_shots) {
        BatchLevel2Recovery rec(noise, policy, block_shots, block_seed);
        rec.run_cycle();
        return rec.count_any_logical_error(block_shots);
      });
  return Level2Point{result.proportion(), result.seconds};
}

// |p1 - p2| in units of the combined binomial standard error.
double agreement_sigma(const Proportion& a, const Proportion& b) {
  const double pa = a.mean(), pb = b.mean();
  const double va = pa * (1 - pa) / static_cast<double>(a.trials);
  const double vb = pb * (1 - pb) / static_cast<double>(b.trials);
  const double se = std::sqrt(va + vb);
  return se > 0 ? std::fabs(pa - pb) / se : 0.0;
}

// ---- Rare-event strata -----------------------------------------------------
// Injector-driven replays of the same gadgets for the importance-sampled
// fault-set strata: all noise comes from the armed fault set (or, during
// N_eff calibration, from the injector's own stochastic stream), so the
// driver's RNG seed is fixed for the replay form.

GadgetExperiment level1_experiment() {
  return [](NoiseInjector& injector) {
    SteaneRecovery rec(sim::NoiseParams{}, RecoveryPolicy{}, /*seed=*/77);
    rec.set_injector(&injector);
    rec.run_cycle();
    rec.set_injector(nullptr);
    return rec.any_logical_error();
  };
}

SeededGadgetExperiment level1_seeded() {
  return [](NoiseInjector& injector, uint64_t seed) {
    SteaneRecovery rec(sim::NoiseParams{}, RecoveryPolicy{}, seed);
    rec.set_injector(&injector);
    rec.run_cycle();
    rec.set_injector(nullptr);
    return rec.any_logical_error();
  };
}

GadgetExperiment level2_experiment(Level2Discipline discipline) {
  return [discipline](NoiseInjector& injector) {
    RecoveryPolicy policy;
    policy.level2_discipline = discipline;
    Level2Recovery rec(sim::NoiseParams{}, policy, /*seed=*/77);
    rec.set_injector(&injector);
    rec.run_cycle();
    rec.set_injector(nullptr);
    return rec.any_logical_error();
  };
}

SeededGadgetExperiment level2_seeded(Level2Discipline discipline) {
  return [discipline](NoiseInjector& injector, uint64_t seed) {
    RecoveryPolicy policy;
    policy.level2_discipline = discipline;
    Level2Recovery rec(sim::NoiseParams{}, policy, seed);
    rec.set_injector(&injector);
    rec.run_cycle();
    rec.set_injector(nullptr);
    return rec.any_logical_error();
  };
}

// Sub-pseudothreshold eps points no direct shot budget can resolve: at
// eps = 1e-5 the level-1 cycle fails about once per 1e10 shots.
constexpr double kRareEps[] = {1e-4, 5e-5, 1e-5};
constexpr const char* kRareLabels[] = {"1em4", "5em5", "1em5"};

struct RareConfig {
  size_t low_max_faults;   // strata for the kRareEps sweep (small N*eps)
  size_t low_budget;
  size_t agree_max_faults; // strata for the eps = 1e-3 agreement point
  size_t agree_budget;
  size_t calib_shots;      // stochastic runs for the N_eff calibration
};

// Runs the two stratified sweeps for one gadget: the low-eps sweep on the
// noiseless location count (retries are vanishingly rare there) and the
// eps = 1e-3 cross-validation point on the calibrated N_eff prior. The
// comparison against the direct Monte Carlo measurement happens OUTSIDE
// the sweep point (it needs the direct point's metrics), so the point stays
// dependency-free and checkpoints on its own.
sim::SweepMetrics run_rare(const GadgetExperiment& experiment,
                           const SeededGadgetExperiment& seeded,
                           const RareConfig& cfg, uint64_t seed) {
  RareEventOptions options;
  options.scan.filter = gate_kinds_only();  // the sweeps run eps_store = 0
  options.max_faults = cfg.low_max_faults;
  options.budget = cfg.low_budget;
  // Single-fault tolerance is proven by the fault-enumeration test suites
  // (exhaustively for the level-1 cycle and the exRec cycle, strided for
  // the bare level-2 cycle), so the k = 1 stratum is pinned to zero.
  options.known_zero_max_k = 1;
  options.seed = seed;
  const ft::RareEventSweep low = estimate_rare_failure_sweep(
      experiment, {kRareEps[0], kRareEps[1], kRareEps[2]}, options);

  // At eps = 1e-3 fault-triggered retries measurably extend the realized
  // path, so the agreement point's binomial prior uses the calibrated mean
  // location count instead of the noiseless one.
  options.max_faults = cfg.agree_max_faults;
  options.budget = cfg.agree_budget;
  options.seed = seed + 1;
  options.n_eff_override = calibrate_mean_locations(
      seeded, sim::NoiseParams::uniform_gate(1e-3), gate_kinds_only(),
      cfg.calib_shots, seed + 2);
  const ft::RareEventSweep agree =
      estimate_rare_failure_sweep(experiment, {1e-3}, options);

  sim::SweepMetrics metrics;
  for (size_t i = 0; i < 3; ++i) {
    const std::string base = std::string("low_") + kRareLabels[i];
    metrics.add(base + "_mean", low.estimates[i].mean);
    metrics.add(base + "_relerr", low.estimates[i].relative_halfwidth());
  }
  metrics.add("agree_mean", agree.estimates[0].mean);
  metrics.add("agree_relerr", agree.estimates[0].relative_halfwidth());
  metrics.add("agree_halfwidth", agree.estimates[0].halfwidth);
  metrics.add("n_eff", agree.n_eff);
  return metrics;
}

// The rare-point metrics as numbers again (checkpointed shards drop
// non-finite values, so absent relerrs read back as infinity = unusable).
struct RareView {
  double low_mean[3] = {0, 0, 0};
  double low_relerr[3] = {0, 0, 0};
  double agree_mean = 0;
  double agree_relerr = 0;
  double agree_halfwidth = 0;
  double n_eff = 0;
};

RareView rare_view(const sim::SweepMetrics& metrics) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  RareView view;
  for (size_t i = 0; i < 3; ++i) {
    const std::string base = std::string("low_") + kRareLabels[i];
    view.low_mean[i] = metrics.get(base + "_mean").value_or(0.0);
    view.low_relerr[i] = metrics.get(base + "_relerr").value_or(kInf);
  }
  view.agree_mean = metrics.at("agree_mean");
  view.agree_relerr = metrics.get("agree_relerr").value_or(kInf);
  view.agree_halfwidth = metrics.get("agree_halfwidth").value_or(0.0);
  view.n_eff = metrics.at("n_eff");
  return view;
}

// An estimate tight enough to use as a data point (finite interval no wider
// than ~75% of the mean); looser strata still get reported with their
// relerr, they just stay out of the crossover fit.
bool rare_usable(double relerr) {
  return std::isfinite(relerr) && relerr < 0.75;
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E18",
                    {sim::ShotEngine::kFrame, sim::ShotEngine::kBatch});
  const sim::ShotEngine engine =
      ftqc::bench::engine_or(sim::ShotEngine::kBatch);
  const bool batch = engine == sim::ShotEngine::kBatch;
  std::printf(
      "E18: level-1 vs level-2 concatenated recovery, full circuit level.\n"
      "One FT recovery cycle per level; failure after ideal decode. The\n"
      "level-2 gadget runs both disciplines: bare subblocks vs the\n"
      "extended-rectangle (exRec) interleave of level-1 recoveries.\n"
      "[engine: %s%s]\n\n",
      sim::shot_engine_name(engine),
      batch ? ", level-2 shot budget x4" : "");
  struct Point {
    const char* tag;
    double eps;
    size_t shots;
  };
  const std::vector<Point> eps_grid = {{"4em3", 4e-3, 20000},
                                       {"2em3", 2e-3, 20000},
                                       {"1em3", 1e-3, 30000},
                                       {"5em4", 5e-4, 40000},
                                       {"2p5em4", 2.5e-4, 40000}};
  // Smoke mode divides shot counts by 100 (and still exercises both levels,
  // both disciplines and — under batch — the cross-engine check).
  const size_t div = ftqc::bench::smoke() ? 100 : 1;
  const size_t rare_div = ftqc::bench::smoke() ? 20 : 1;

  // --- Build the sweep ------------------------------------------------------
  std::vector<sim::SweepPoint> points;
  std::map<std::string, size_t> index;
  const auto add_point =
      [&](std::string id,
          std::function<std::optional<sim::SweepMetrics>()> run) {
        index.emplace(id, points.size());
        points.push_back(sim::SweepPoint{"E18", std::move(id), std::move(run)});
      };
  const auto proportion_metrics = [](const Proportion& p, double seconds) {
    sim::SweepMetrics metrics;
    metrics.add("failures", static_cast<double>(p.successes));
    metrics.add("trials", static_cast<double>(p.trials));
    metrics.add("seconds", seconds);
    return metrics;
  };
  for (const Point& pt : eps_grid) {
    // The batch engine reclaims enough wall-clock to run the level-2 sweep
    // at the full level-1 shot budget (4x the serial sweep), tightening the
    // crossover extrapolation's error bars. Legacy seeds (1000 level 1,
    // 2000 level 2, stride 11, 1024-shot blocks) carry over from the
    // pre-scheduler loop so the measured values are unchanged.
    const size_t l2_shots = batch ? pt.shots / div : pt.shots / div / 4;
    add_point(std::string("l1_") + pt.tag,
              [&pt, div, engine, proportion_metrics]()
                  -> std::optional<sim::SweepMetrics> {
                const auto l1 =
                    level1_failure(pt.eps, pt.shots / div, 1000, engine);
                return proportion_metrics(l1.failures, l1.seconds);
              });
    add_point(std::string("bare_") + pt.tag,
              [&pt, l2_shots, engine, proportion_metrics]()
                  -> std::optional<sim::SweepMetrics> {
                const auto bare = level2_failure(
                    pt.eps, l2_shots, 2000, Level2Discipline::kBare, engine);
                return proportion_metrics(bare.failures, bare.seconds);
              });
    add_point(std::string("exrec_") + pt.tag,
              [&pt, l2_shots, engine, proportion_metrics]()
                  -> std::optional<sim::SweepMetrics> {
                const auto exrec = level2_failure(
                    pt.eps, l2_shots, 2000, Level2Discipline::kExRec, engine);
                return proportion_metrics(exrec.failures, exrec.seconds);
              });
  }
  if (batch) {
    // Cross-engine acceptance gate: the exRec sweep's batch estimate must
    // match a serial frame run within binomial error while delivering an
    // order-of-magnitude throughput win.
    add_point("exrec_frame_1em3",
              [div, proportion_metrics]() -> std::optional<sim::SweepMetrics> {
                const auto serial = level2_failure(
                    1e-3, 30000 / div / 4, 2000, Level2Discipline::kExRec,
                    sim::ShotEngine::kFrame);
                return proportion_metrics(serial.failures, serial.seconds);
              });
  }
  // Importance-sampled rare-event strata (ft/fault_enumeration.h): resolve
  // the deep sub-pseudothreshold regime no direct shot budget can reach —
  // P(fail) = sum_k w_k(eps) P(fail|k) with empirical likelihood-ratio
  // stratum weights measured once per gadget and reused across the eps
  // grid. Smoke mode keeps the level-1 sweep (microsecond replays); the
  // level-2 strata need tens of thousands of millisecond-scale replays and
  // run in full mode only.
  add_point("rare_level1", [rare_div]() -> std::optional<sim::SweepMetrics> {
    return run_rare(level1_experiment(), level1_seeded(),
                    RareConfig{/*low_max_faults=*/4,
                               /*low_budget=*/24000 / rare_div,
                               /*agree_max_faults=*/6,
                               /*agree_budget=*/12000 / rare_div,
                               /*calib_shots=*/ftqc::bench::smoke() ? 20u
                                                                    : 200u},
                    /*seed=*/29);
  });
  if (!ftqc::bench::smoke()) {
    // Bare cycle: ~3k gate locations, so N*eps stays small everywhere. The
    // exRec cycle's ~4.8k gate locations (calibrated to ~7.6k at eps = 1e-3
    // by fault-triggered retries) put the agreement point's mean fault
    // count near 8; its strata must cover the realized K distribution out
    // to where the conditional mass dies, which sits well past the
    // binomial's reach because the path stretches with the fault count.
    add_point("rare_bare", []() -> std::optional<sim::SweepMetrics> {
      return run_rare(level2_experiment(Level2Discipline::kBare),
                      level2_seeded(Level2Discipline::kBare),
                      RareConfig{6, 24000, 18, 32000, 100}, 43);
    });
    // The exRec agreement point is the hardest in the file: failures
    // spread thinly over ~40 live strata (mean fault count ~8, conditional
    // rates ~1e-3 each), so it needs the largest raw budget to pull the
    // per-stratum counts off the 0-or-1-failure floor.
    add_point("rare_exrec", []() -> std::optional<sim::SweepMetrics> {
      return run_rare(level2_experiment(Level2Discipline::kExRec),
                      level2_seeded(Level2Discipline::kExRec),
                      RareConfig{24, 24000, 40, 160000, 200}, 57);
    });
  }

  sim::CheckpointStore store(ftqc::bench::checkpoint_dir());
  const sim::SweepReport report = sim::run_sweep(
      points, ftqc::bench::sweep_options(),
      ftqc::bench::checkpoint_dir().empty() ? nullptr : &store);
  if (!report.finished()) {
    std::printf(
        "E18 sweep checkpointed: %zu done, %zu remaining (rerun with the "
        "same --checkpoint-dir to resume; no BENCH_E18.json written)\n",
        report.completed + report.skipped, report.remaining + report.failed);
    return report.failed > 0 ? 1 : 0;
  }
  const auto metrics_of =
      [&](const std::string& id) -> const sim::SweepMetrics& {
    return *report.results[index.at(id)];
  };
  const auto prop = [&](const std::string& id) {
    const auto& m = metrics_of(id);
    return Proportion{static_cast<uint64_t>(m.at("failures")),
                      static_cast<uint64_t>(m.at("trials"))};
  };
  const auto shots_per_sec = [&](const std::string& id) {
    const auto& m = metrics_of(id);
    const double seconds = m.at("seconds");
    return seconds > 0 ? m.at("trials") / seconds : 0.0;
  };

  // --- Tables, fits and the BENCH_E18.json artifact -------------------------
  ftqc::bench::JsonResult json;
  ftqc::Table table({"eps", "level-1 P(fail)", "L2 bare", "L2 exRec",
                     "bare/L1", "exRec/L1", "exRec gain"});
  std::vector<double> grid, bare_ratio, exrec_ratio;
  // Direct measurements at eps = 1e-3, kept for the rare-event strata's
  // cross-validation below.
  Proportion l1_1em3, bare_1em3, exrec_1em3;
  for (const Point& pt : eps_grid) {
    const auto l1 = prop(std::string("l1_") + pt.tag);
    const auto bare = prop(std::string("bare_") + pt.tag);
    const auto exrec = prop(std::string("exrec_") + pt.tag);
    const double f1 = l1.mean();
    const double fb = bare.mean();
    const double fx = exrec.mean();
    grid.push_back(pt.eps);
    // Only points where both proportions RESOLVED with at least one failure
    // enter the crossover fit: a zero mean is either "0 failures in n shots"
    // (real data, but log-unfittable) or "0 trials" (never measured), and
    // conflating the two would let an unmeasured point masquerade as data.
    bare_ratio.push_back(l1.resolved() && bare.resolved() && f1 > 0 && fb > 0
                             ? fb / f1
                             : 0.0);
    exrec_ratio.push_back(l1.resolved() && exrec.resolved() && f1 > 0 &&
                                  fx > 0
                              ? fx / f1
                              : 0.0);
    table.add_row({ftqc::strfmt("%.2e", pt.eps), ftqc::strfmt("%.3e", f1),
                   ftqc::strfmt("%.3e", fb), ftqc::strfmt("%.3e", fx),
                   ftqc::strfmt("%.2f", bare_ratio.back()),
                   ftqc::strfmt("%.2f", exrec_ratio.back()),
                   ftqc::strfmt("%.2fx", fx > 0 ? fb / fx : -1.0)});
    if (pt.eps == 1e-3) {
      l1_1em3 = l1;
      bare_1em3 = bare;
      exrec_1em3 = exrec;
      json.add("eps", pt.eps);
      json.add("level1_failure", f1);
      json.add("level2_failure", fb);  // historical name: bare discipline
      json.add("level2_exrec_failure", fx);
      if (fx > 0) json.add("exrec_gain", fb / fx);
      if (batch) {
        const auto serial = prop("exrec_frame_1em3");
        const double sigma = agreement_sigma(serial, exrec);
        const double frame_sps = shots_per_sec("exrec_frame_1em3");
        const double batch_sps = shots_per_sec("exrec_1em3");
        const double speedup = frame_sps > 0 ? batch_sps / frame_sps : 0.0;
        std::printf(
            "\nexRec cross-engine check at eps = %.0e: frame %.3e vs batch "
            "%.3e\n(%.2f sigma), frame %.3g shots/s vs batch %.3g shots/s -> "
            "%.1fx\n\n",
            pt.eps, serial.mean(), fx, sigma, frame_sps, batch_sps, speedup);
        json.add("batch_speedup", speedup);
        json.add("cross_engine_sigma", sigma);
      }
    }
  }
  table.print();

  // --- Rare-event strata reporting ------------------------------------------
  std::printf("\nRare-event strata (importance-sampled fault sets):\n");
  const RareView rare_l1 = rare_view(metrics_of("rare_level1"));
  std::optional<RareView> rare_bare, rare_exrec;
  if (!ftqc::bench::smoke()) {
    rare_bare = rare_view(metrics_of("rare_bare"));
    rare_exrec = rare_view(metrics_of("rare_exrec"));
  }
  ftqc::Table rare_table(
      {"gadget", "eps", "stratified P(fail)", "rel 95% hw", "sigma vs MC"});
  const auto add_rare = [&](const char* key, const RareView& view,
                            const Proportion& direct) {
    for (size_t i = 0; i < 3; ++i) {
      const std::string base =
          std::string("rare_") + key + "_" + kRareLabels[i];
      json.add(base, view.low_mean[i]);
      json.add(base + "_relerr", view.low_relerr[i]);
      rare_table.add_row({key, ftqc::strfmt("%.1e", kRareEps[i]),
                          ftqc::strfmt("%.3e", view.low_mean[i]),
                          ftqc::strfmt("%.0f%%", 100 * view.low_relerr[i]),
                          "-"});
    }
    // The |stratified - direct| agreement sigma, recomputed here from the
    // rare point's interval and the direct point's Wilson interval (the
    // rare sweep point itself never sees the direct measurement).
    const double se_strat = view.agree_halfwidth / 1.96;
    const double se_direct = direct.wilson_halfwidth() / 1.96;
    const double se = std::sqrt(se_strat * se_strat + se_direct * se_direct);
    const double sigma =
        se > 0 ? std::fabs(view.agree_mean - direct.mean()) / se : 0.0;
    json.add(std::string("rare_") + key + "_1em3", view.agree_mean);
    json.add(std::string("rare_") + key + "_1em3_relerr", view.agree_relerr);
    json.add(std::string("rare_agreement_sigma_") + key, sigma);
    json.add(std::string("rare_") + key + "_n_eff", view.n_eff);
    rare_table.add_row({key, "1.0e-03", ftqc::strfmt("%.3e", view.agree_mean),
                        ftqc::strfmt("%.0f%%", 100 * view.agree_relerr),
                        ftqc::strfmt("%.2f", sigma)});
  };
  add_rare("level1", rare_l1, l1_1em3);
  if (rare_bare) add_rare("bare", *rare_bare, bare_1em3);
  if (rare_exrec) add_rare("exrec", *rare_exrec, exrec_1em3);
  rare_table.print();

  // The stratified points extend the ratio curves below the direct grid, so
  // the crossover fit can be BRACKETED by measured data instead of pure
  // extrapolation. Only estimates tight enough to be data participate.
  if (rare_bare && rare_exrec) {
    for (size_t i = 0; i < 3; ++i) {
      if (!rare_usable(rare_l1.low_relerr[i])) continue;
      grid.push_back(kRareEps[i]);
      bare_ratio.push_back(rare_usable(rare_bare->low_relerr[i])
                               ? rare_bare->low_mean[i] / rare_l1.low_mean[i]
                               : 0.0);
      exrec_ratio.push_back(rare_usable(rare_exrec->low_relerr[i])
                                ? rare_exrec->low_mean[i] / rare_l1.low_mean[i]
                                : 0.0);
    }
  }

  // Log-log fit of the level-2/level-1 failure ratio to ratio = 1: the eps
  // where each discipline's level-2 curve crosses the level-1 curve. The
  // _extrapolated flags record whether the fitted crossing fell outside the
  // sampled eps range (compare_bench.py skips flagged crossovers).
  const ftqc::UnitCrossing cross_bare =
      ftqc::loglog_unit_crossing_ex(grid, bare_ratio);
  const ftqc::UnitCrossing cross_exrec =
      ftqc::loglog_unit_crossing_ex(grid, exrec_ratio);
  if (cross_bare.valid) json.add("crossover_bare", cross_bare.x);
  if (cross_exrec.valid) json.add("crossover_exrec", cross_exrec.x);
  json.add("crossover_bare_extrapolated",
           !cross_bare.valid || cross_bare.extrapolated);
  json.add("crossover_exrec_extrapolated",
           !cross_exrec.valid || cross_exrec.extrapolated);
  json.add_string("engine", sim::shot_engine_name(engine));
  json.write();
  if (cross_bare.valid || cross_exrec.valid) {
    std::printf(
        "\nLevel-2-beats-level-1 crossover (ratio->1, log-log fit):\n"
        "  bare  : eps ~ %.1e (%s)\n"
        "  exRec : eps ~ %.1e (%s)   (paper's Eq. 34 estimate ~ 6e-4)\n",
        cross_bare.x, cross_bare.extrapolated ? "extrapolated" : "bracketed",
        cross_exrec.x,
        cross_exrec.extrapolated ? "extrapolated" : "bracketed");
  }
  std::printf(
      "\nShape check: both level-2 curves are steeper than level 1. Below\n"
      "the pseudothreshold the exRec curve sits well under the bare one:\n"
      "interleaving level-1 recoveries inside the level-2 ancilla\n"
      "preparation removes the cross-extraction malignant pairs (one\n"
      "transversal-XOR fault in EACH ancilla prep) that inflate the bare\n"
      "gadget's O(eps^2) constant, so the measured crossover moves up\n"
      "toward the paper's Eq. 34 estimate — at full shot counts exRec\n"
      "level 2 already beats level 1 at eps = 5e-4, where the bare gadget\n"
      "still loses by 5x. Above the pseudothreshold the interleave's extra\n"
      "hardware costs more than it saves (exRec gain < 1 at 4e-3), exactly\n"
      "the paper's \"coding makes things worse\" regime. The qualitative §5\n"
      "mechanism — the bigger code's failure curve is steeper, so below a\n"
      "critical eps each added level helps — is what the falling ratio\n"
      "columns demonstrate.\n");
  return 0;
}
