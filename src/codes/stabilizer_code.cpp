#include "codes/stabilizer_code.h"

#include "common/check.h"
#include "gf2/bitmat.h"
#include "gf2/linalg.h"

namespace ftqc::codes {

using pauli::PauliString;

StabilizerCode::StabilizerCode(std::string name, size_t n,
                               std::vector<PauliString> generators,
                               std::vector<PauliString> logical_x,
                               std::vector<PauliString> logical_z)
    : name_(std::move(name)),
      n_(n),
      generators_(std::move(generators)),
      logical_x_(std::move(logical_x)),
      logical_z_(std::move(logical_z)) {
  validate();
}

void StabilizerCode::validate() const {
  FTQC_CHECK(logical_x_.size() == logical_z_.size(),
             "logical X/Z counts differ");
  FTQC_CHECK(generators_.size() + logical_x_.size() == n_,
             "generator count must be n - k");
  for (const auto& g : generators_) {
    FTQC_CHECK(g.num_qubits() == n_, "generator size mismatch");
    for (const auto& h : generators_) {
      FTQC_CHECK(g.commutes_with(h), "stabilizer generators must commute");
    }
  }
  // Generators must be independent: the (x|z) rows have full rank.
  gf2::BitMat rows(generators_.size(), 2 * n_);
  for (size_t i = 0; i < generators_.size(); ++i) {
    for (size_t q = 0; q < n_; ++q) {
      rows.set(i, q, generators_[i].x_bit(q));
      rows.set(i, n_ + q, generators_[i].z_bit(q));
    }
  }
  FTQC_CHECK(gf2::rank(rows) == generators_.size(),
             "stabilizer generators must be independent");

  // Logical algebra of Eq. (29).
  for (size_t i = 0; i < k(); ++i) {
    FTQC_CHECK(in_normalizer(logical_x_[i]), "logical X not in normalizer");
    FTQC_CHECK(in_normalizer(logical_z_[i]), "logical Z not in normalizer");
    FTQC_CHECK(!in_stabilizer_group(logical_x_[i]),
               "logical X lies in the stabilizer");
    FTQC_CHECK(!in_stabilizer_group(logical_z_[i]),
               "logical Z lies in the stabilizer");
    for (size_t j = 0; j < k(); ++j) {
      FTQC_CHECK(logical_x_[i].commutes_with(logical_x_[j]),
                 "logical X operators must commute");
      FTQC_CHECK(logical_z_[i].commutes_with(logical_z_[j]),
                 "logical Z operators must commute");
      const bool should_anticommute = (i == j);
      FTQC_CHECK(logical_x_[i].commutes_with(logical_z_[j]) !=
                     should_anticommute,
                 "logical X_i / Z_j commutation violates Eq. (29)");
    }
  }
}

gf2::BitVec StabilizerCode::syndrome(const PauliString& error) const {
  gf2::BitVec s(generators_.size());
  for (size_t j = 0; j < generators_.size(); ++j) {
    s.set(j, !generators_[j].commutes_with(error));
  }
  return s;
}

bool StabilizerCode::in_stabilizer_group(const PauliString& p) const {
  if (syndrome(p).any()) return false;
  // p (as a symplectic row) must lie in the row space of the generators.
  gf2::BitMat rows(generators_.size(), 2 * n_);
  for (size_t i = 0; i < generators_.size(); ++i) {
    for (size_t q = 0; q < n_; ++q) {
      rows.set(i, q, generators_[i].x_bit(q));
      rows.set(i, n_ + q, generators_[i].z_bit(q));
    }
  }
  gf2::BitVec v(2 * n_);
  for (size_t q = 0; q < n_; ++q) {
    v.set(q, p.x_bit(q));
    v.set(n_ + q, p.z_bit(q));
  }
  return gf2::in_row_space(rows, v);
}

StabilizerCode::LogicalEffect StabilizerCode::logical_effect(
    const PauliString& residual) const {
  FTQC_DCHECK(in_normalizer(residual),
              "logical_effect requires a normalizer element");
  LogicalEffect effect;
  effect.x_flips = gf2::BitVec(k());
  effect.z_flips = gf2::BitVec(k());
  for (size_t i = 0; i < k(); ++i) {
    effect.x_flips.set(i, !residual.commutes_with(logical_z_[i]));
    effect.z_flips.set(i, !residual.commutes_with(logical_x_[i]));
  }
  return effect;
}

size_t StabilizerCode::brute_force_distance() const {
  FTQC_CHECK(n_ <= 11, "brute-force distance limited to n <= 11");
  size_t best = n_ + 1;
  // Enumerate all Paulis by base-4 counting (I,X,Y,Z per qubit).
  size_t total = 1;
  for (size_t q = 0; q < n_; ++q) total *= 4;
  for (size_t idx = 1; idx < total; ++idx) {
    PauliString p(n_);
    size_t rest = idx;
    size_t weight = 0;
    for (size_t q = 0; q < n_; ++q) {
      static constexpr char kChars[] = {'I', 'X', 'Y', 'Z'};
      const char c = kChars[rest & 3];
      rest >>= 2;
      if (c != 'I') ++weight;
      p.set_pauli(q, c);
    }
    if (weight >= best) continue;
    if (in_normalizer(p) && !in_stabilizer_group(p)) best = weight;
  }
  return best;
}

}  // namespace ftqc::codes
