// Cross-engine consistency: the exact tableau engine, the Pauli-frame
// sampler, and the bit-parallel batch sampler must tell the same story for a
// shared Clifford circuit — and each engine must be reproducible from its
// seed alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/batch_frame_sim.h"
#include "sim/circuit.h"
#include "sim/frame_sim.h"
#include "sim/runner.h"
#include "sim/tableau_sim.h"

namespace ftqc::sim {
namespace {

// A representative 5-qubit Clifford mixing circuit with noise channels and a
// full terminal Z-measurement layer.
Circuit noisy_clifford_circuit() {
  Circuit c(5);
  for (uint32_t q = 0; q < 5; ++q) c.h(q);
  c.cx(0, 1);
  c.cx(2, 3);
  c.cz(1, 2);
  c.swap(3, 4);
  for (uint32_t q = 0; q < 5; ++q) c.depolarize1(q, 0.2);
  c.depolarize2(0, 4, 0.2);
  c.tick();
  c.cx(4, 0);
  for (uint32_t q = 0; q < 5; ++q) c.h(q);
  for (uint32_t q = 0; q < 5; ++q) c.m(q);
  return c;
}

// Self-inverting Clifford circuit with a deterministic Pauli error pattern
// injected at the midpoint. The noiseless version is the identity, so every
// terminal measurement is deterministic (reference outcome 0) and the frame
// flips must reproduce the exact engine's record bit for bit.
Circuit injected_clifford_circuit() {
  Circuit c(5);
  for (uint32_t q = 0; q < 5; ++q) c.h(q);
  c.cx(0, 1);
  c.cx(2, 3);
  c.cz(1, 2);
  c.swap(3, 4);
  c.inject(0, 'X');
  c.inject(2, 'Y');
  c.inject(3, 'Z');
  c.tick();
  c.swap(3, 4);
  c.cz(1, 2);
  c.cx(2, 3);
  c.cx(0, 1);
  for (uint32_t q = 0; q < 5; ++q) c.h(q);
  for (uint32_t q = 0; q < 5; ++q) c.m(q);
  return c;
}

TEST(CrossEngine, TableauSameSeedSameRecord) {
  const Circuit c = noisy_clifford_circuit();
  TableauSim a(5, /*seed=*/1234), b(5, /*seed=*/1234);
  EXPECT_EQ(run_circuit(a, c), run_circuit(b, c));
}

TEST(CrossEngine, FrameSameSeedSameRecord) {
  const Circuit c = noisy_clifford_circuit();
  FrameSim a(5, /*seed=*/77), b(5, /*seed=*/77);
  EXPECT_EQ(run_circuit(a, c), run_circuit(b, c));
}

TEST(CrossEngine, BatchFrameSameSeedSameFlips) {
  Circuit c(5);
  for (uint32_t q = 0; q < 5; ++q) c.h(q);
  c.cx(0, 1);
  c.cz(1, 2);
  for (uint32_t q = 0; q < 5; ++q) c.depolarize1(q, 0.2);
  c.x_error(3, 0.5);
  c.z_error(4, 0.5);

  BatchFrameSim a(5, 256, /*seed=*/99), b(5, 256, /*seed=*/99);
  a.run(c);
  b.run(c);
  for (size_t q = 0; q < 5; ++q) {
    for (size_t shot = 0; shot < 256; ++shot) {
      ASSERT_EQ(a.x_flip(q, shot), b.x_flip(q, shot)) << q << "," << shot;
      ASSERT_EQ(a.z_flip(q, shot), b.z_flip(q, shot)) << q << "," << shot;
    }
  }
}

// With no noise at all, the frame engine must report zero flips regardless of
// seed: the noisy run *is* the reference run.
TEST(CrossEngine, NoiselessFrameRecordIsAllZero) {
  Circuit c = injected_clifford_circuit();
  Circuit clean(5);
  for (const auto& op : c.ops()) {
    if (op.gate == Gate::INJECT_X || op.gate == Gate::INJECT_Y ||
        op.gate == Gate::INJECT_Z) {
      continue;  // strip the injected errors
    }
    clean.append(op.gate, op.targets, op.arg, op.cond);
  }
  for (uint64_t seed : {1ull, 2ull, 983ull}) {
    FrameSim f(5, seed);
    const auto record = run_circuit(f, clean);
    ASSERT_EQ(record.size(), 5u);
    for (uint8_t bit : record) EXPECT_EQ(bit, 0);
  }
}

// The frame record of a deterministically injected error must equal the
// exact engine's record bit for bit: the circuit is self-inverting, so the
// noiseless reference outcome of every measurement is a deterministic 0 and
// the flip IS the outcome. This pins FrameSim's flip semantics (and its
// Pauli propagation) to the tableau engine's.
TEST(CrossEngine, FrameFlipsMatchTableauDifference) {
  const Circuit noisy = injected_clifford_circuit();
  Circuit clean(5);
  for (const auto& op : noisy.ops()) {
    if (op.gate == Gate::INJECT_X || op.gate == Gate::INJECT_Y ||
        op.gate == Gate::INJECT_Z) {
      continue;
    }
    clean.append(op.gate, op.targets, op.arg, op.cond);
  }

  for (uint64_t seed : {5ull, 6ull, 7ull}) {
    TableauSim noisy_sim(5, seed), clean_sim(5, seed);
    const auto noisy_rec = run_circuit(noisy_sim, noisy);
    const auto clean_rec = run_circuit(clean_sim, clean);
    ASSERT_EQ(noisy_rec.size(), clean_rec.size());
    // Sanity: the clean circuit really is the identity on |00000>.
    for (uint8_t bit : clean_rec) ASSERT_EQ(bit, 0);

    FrameSim frame(5, seed);
    const auto flips = run_circuit(frame, noisy);
    ASSERT_EQ(flips.size(), noisy_rec.size());
    for (size_t i = 0; i < flips.size(); ++i) {
      EXPECT_EQ(flips[i], noisy_rec[i]) << "measurement " << i;
    }
    // The injected pattern is not trivial: at least one bit must flip.
    size_t weight = 0;
    for (uint8_t bit : flips) weight += bit;
    EXPECT_GT(weight, 0u);
  }
}

// For a straight-line circuit the batch sampler's destructive flip masks
// must agree with FrameSim's destructive flips when the error pattern is
// deterministic (every shot identical).
TEST(CrossEngine, BatchFlipsMatchFrameSimDestructiveFlips) {
  Circuit c(4);
  for (uint32_t q = 0; q < 4; ++q) c.h(q);
  c.cx(0, 1);
  c.cx(1, 2);
  c.cz(2, 3);
  c.inject(1, 'X');
  c.inject(3, 'Y');

  FrameSim frame(4, /*seed=*/11);
  for (const auto& op : c.ops()) {
    switch (op.gate) {
      case Gate::H: frame.apply_h(op.targets[0]); break;
      case Gate::CX: frame.apply_cx(op.targets[0], op.targets[1]); break;
      case Gate::CZ: frame.apply_cz(op.targets[0], op.targets[1]); break;
      case Gate::INJECT_X: frame.inject_x(op.targets[0]); break;
      case Gate::INJECT_Y: frame.inject_y(op.targets[0]); break;
      case Gate::INJECT_Z: frame.inject_z(op.targets[0]); break;
      default: break;
    }
  }

  BatchFrameSim batch(4, 128, /*seed=*/22);
  batch.run(c);
  for (size_t q = 0; q < 4; ++q) {
    for (size_t shot = 0; shot < 128; ++shot) {
      ASSERT_EQ(batch.x_flip(q, shot), frame.destructive_z_flip(q))
          << q << "," << shot;
      ASSERT_EQ(batch.z_flip(q, shot), frame.destructive_x_flip(q))
          << q << "," << shot;
    }
  }

  // Double injection cancels (flip semantics, matching FrameSim::inject_*).
  Circuit cancel(2);
  cancel.inject(0, 'Y');
  cancel.inject(0, 'Y');
  BatchFrameSim batch2(2, 64, /*seed=*/23);
  batch2.run(cancel);
  EXPECT_FALSE(batch2.x_flip(0, 0));
  EXPECT_FALSE(batch2.z_flip(0, 0));
}

// --- Full gadget replay: BatchFrameSim records --------------------------

// Deterministic gadget exercising the whole replay surface: SWAP, M, MX,
// MR, R and Pauli feedforward. Measurement rows are gauge-independent by
// construction (no qubit is re-measured in the conjugate basis without an
// intervening reset), so every lane and every FrameSim seed must agree.
struct ReplayCircuit {
  Circuit c{4};
  int32_t r0, r1, r2, r3, r4, r5;

  ReplayCircuit() {
    c.inject(0, 'X');
    c.inject(1, 'Y');
    c.swap(0, 1);    // q0 <- Y, q1 <- X
    c.cx(1, 2);      // q2 picks up the X
    r0 = c.m(1);     // flip 1
    c.x(2, r0);      // feedforward: cancels q2's X on the lanes that saw 1
    r1 = c.m(2);     // flip 0
    r2 = c.mr(0);    // flip 1, then reset
    r3 = c.m(0);     // flip 0
    c.r(3);
    c.inject(3, 'Z');
    r4 = c.mx(3);    // flip 1
    c.r(2);
    c.z(2, r4);      // feedforward onto a fresh qubit, read in the X basis
    r5 = c.mx(2);    // flip 1
  }
};

// Executes the replay circuit on a FrameSim by hand (run_circuit rejects
// feedforward for the serial frame engine), pinning the reference semantics
// the batch engine must reproduce.
void frame_replay_record(const Circuit& c, uint64_t seed,
                         std::vector<uint8_t>& record) {
  FrameSim f(c.num_qubits(), seed);
  record.clear();
  for (const auto& op : c.ops()) {
    if (op.cond >= 0) {
      ASSERT_LT(static_cast<size_t>(op.cond), record.size()) << "bad cond";
      if (record[static_cast<size_t>(op.cond)] == 0) continue;
      switch (op.gate) {
        case Gate::X: f.inject_x(op.targets[0]); break;
        case Gate::Y: f.inject_y(op.targets[0]); break;
        case Gate::Z: f.inject_z(op.targets[0]); break;
        default: FAIL() << "non-Pauli feedforward";
      }
      continue;
    }
    switch (op.gate) {
      case Gate::H: f.apply_h(op.targets[0]); break;
      case Gate::S: f.apply_s(op.targets[0]); break;
      case Gate::CX: f.apply_cx(op.targets[0], op.targets[1]); break;
      case Gate::CZ: f.apply_cz(op.targets[0], op.targets[1]); break;
      case Gate::SWAP: f.apply_swap(op.targets[0], op.targets[1]); break;
      case Gate::M: record.push_back(f.measure_z(op.targets[0])); break;
      case Gate::MX: record.push_back(f.measure_x(op.targets[0])); break;
      case Gate::MR:
        record.push_back(f.measure_z(op.targets[0]));
        f.reset(op.targets[0]);
        break;
      case Gate::R: f.reset(op.targets[0]); break;
      case Gate::INJECT_X: f.inject_x(op.targets[0]); break;
      case Gate::INJECT_Y: f.inject_y(op.targets[0]); break;
      case Gate::INJECT_Z: f.inject_z(op.targets[0]); break;
      default: break;
    }
  }
}

// The batch record must match 64 independent FrameSim shots bit for bit.
TEST(CrossEngine, BatchRecordMatchesFrameShots) {
  const ReplayCircuit replay;

  BatchFrameSim batch(4, 64, /*seed=*/5);
  const BatchRecord& record = run_circuit(batch, replay.c);
  ASSERT_EQ(record.size(), 6u);

  for (uint64_t seed = 100; seed < 164; ++seed) {
    std::vector<uint8_t> frame_record;
    frame_replay_record(replay.c, seed, frame_record);
    ASSERT_EQ(frame_record.size(), record.size());
    const size_t shot = static_cast<size_t>(seed - 100);
    for (size_t m = 0; m < record.size(); ++m) {
      EXPECT_EQ(record.bit(m, shot), frame_record[m] != 0)
          << "measurement " << m << ", shot " << shot;
    }
  }
  // Expected flips, spelled out (gauge-free by construction).
  const uint8_t expected[6] = {1, 0, 1, 0, 1, 1};
  for (size_t m = 0; m < 6; ++m) {
    for (size_t shot = 0; shot < 64; ++shot) {
      ASSERT_EQ(record.bit(m, shot), expected[m] != 0) << m << "," << shot;
    }
  }
}

// Same seed, same record — including noise channels and gauge draws.
TEST(CrossEngine, BatchRecordSeedDeterminism) {
  Circuit c(3);
  c.x_error(0, 0.3);
  c.depolarize1(1, 0.4);
  c.m(0);
  c.m(1);
  c.h(2);
  c.depolarize2(1, 2, 0.2);
  c.mx(2);
  c.mr(1);

  BatchFrameSim a(3, 256, /*seed=*/42), b(3, 256, /*seed=*/42);
  BatchFrameSim d(3, 256, /*seed=*/43);
  const BatchRecord& ra = run_circuit(a, c);
  const BatchRecord& rb = run_circuit(b, c);
  const BatchRecord& rd = run_circuit(d, c);
  ASSERT_EQ(ra.size(), rb.size());
  bool differs_from_d = false;
  for (size_t m = 0; m < ra.size(); ++m) {
    for (size_t shot = 0; shot < 256; ++shot) {
      ASSERT_EQ(ra.bit(m, shot), rb.bit(m, shot)) << m << "," << shot;
      differs_from_d |= ra.bit(m, shot) != rd.bit(m, shot);
    }
  }
  EXPECT_TRUE(differs_from_d);
}

// Feedforward keyed on a noisy measurement must cancel the error lane by
// lane: after `M q; X q if flip`, re-measuring reads all-zero flips.
TEST(CrossEngine, BatchFeedforwardCancelsPerLane) {
  Circuit c(1);
  c.x_error(0, 0.5);
  const int32_t r0 = c.m(0);
  c.x(0, r0);
  c.m(0);

  BatchFrameSim batch(1, 4096, /*seed=*/9);
  const BatchRecord& record = run_circuit(batch, c);
  ASSERT_EQ(record.size(), 2u);
  size_t first_hits = 0;
  for (size_t shot = 0; shot < batch.num_shots(); ++shot) {
    first_hits += record.bit(0, shot);
    ASSERT_FALSE(record.bit(1, shot)) << "shot " << shot;
  }
  // The first row really was random (~half the lanes flipped).
  EXPECT_GT(first_hits, batch.num_shots() / 3);
  EXPECT_LT(first_hits, 2 * batch.num_shots() / 3);
}

// Postselection: discarding on a verification bit must mark exactly the
// lanes whose record bit matched, and num_kept must account for them.
TEST(CrossEngine, BatchPostselectionMask) {
  Circuit c(2);
  c.x_error(0, 0.5);
  const int32_t r0 = c.m(0);
  (void)r0;
  BatchFrameSim batch(2, 4096, /*seed=*/13);
  const BatchRecord& record = run_circuit(batch, c);
  batch.discard_where(0, /*value=*/true);

  size_t discarded = 0;
  for (size_t shot = 0; shot < batch.num_shots(); ++shot) {
    EXPECT_EQ(batch.aborted(shot), record.bit(0, shot)) << "shot " << shot;
    discarded += record.bit(0, shot);
  }
  EXPECT_EQ(batch.num_kept(), batch.num_shots() - discarded);
  EXPECT_GT(batch.num_kept(), batch.num_shots() / 3);
  EXPECT_LT(batch.num_kept(), 2 * batch.num_shots() / 3);

  // Discarding on the complementary value aborts everything.
  batch.discard_where(0, /*value=*/false);
  EXPECT_EQ(batch.num_kept(), 0u);
}

// Conditional non-Pauli gates cannot be bit-sliced and must be rejected.
TEST(CrossEngine, BatchRejectsConditionalClifford) {
  Circuit c(2);
  const int32_t r0 = c.m(0);
  c.cx(0, 1, r0);
  BatchFrameSim batch(2, 64, /*seed=*/3);
  EXPECT_DEATH(batch.run(c), "feedforward supports only Pauli");
}

// --- Probability-boundary edge cases ------------------------------------
//
// p = 0 channels must be exact no-ops that consume NO RNG state (the batch
// engine's fill_hit_words already short-circuits; the serial engine used to
// burn a bernoulli draw, desynchronizing the two engines' streams), and
// p >= 1 must not feed log1p(-1) = -inf into the batch geometric skip.

// Observable probe of FrameSim's RNG stream: measure_z burns one gauge draw
// that flips the Z frame half the time, and measure_x reads that frame back.
std::vector<uint8_t> frame_rng_probe(FrameSim& f, int rounds) {
  std::vector<uint8_t> stream;
  for (int i = 0; i < rounds; ++i) {
    (void)f.measure_z(0);
    stream.push_back(f.measure_x(0) ? 1 : 0);
    f.reset(0);
  }
  return stream;
}

TEST(BoundaryChannels, FrameZeroProbabilityConsumesNoRng) {
  FrameSim with_zero(2, /*seed=*/314), plain(2, /*seed=*/314);
  with_zero.depolarize1(0, 0.0);
  with_zero.depolarize2(0, 1, 0.0);
  with_zero.x_error(0, 0.0);
  with_zero.y_error(0, 0.0);
  with_zero.z_error(1, 0.0);
  with_zero.leak_error(0, 0.0);
  // No flips were injected...
  EXPECT_FALSE(with_zero.destructive_z_flip(0));
  EXPECT_FALSE(with_zero.destructive_x_flip(0));
  EXPECT_FALSE(with_zero.destructive_z_flip(1));
  // ...and the RNG stream is exactly where an untouched sim's is.
  EXPECT_EQ(frame_rng_probe(with_zero, 64), frame_rng_probe(plain, 64));
}

TEST(BoundaryChannels, FrameCertainErrorsAreDeterministic) {
  for (uint64_t seed : {1ull, 17ull, 900ull}) {
    FrameSim f(2, seed);
    f.x_error(0, 1.0);
    EXPECT_TRUE(f.destructive_z_flip(0)) << "seed " << seed;
    f.z_error(1, 1.0);
    EXPECT_TRUE(f.destructive_x_flip(1)) << "seed " << seed;
    f.leak_error(0, 1.0);
    // A leaked qubit ignores gates: H would otherwise swap X<->Z.
    f.apply_h(0);
    EXPECT_TRUE(f.destructive_z_flip(0)) << "seed " << seed;
  }
}

TEST(BoundaryChannels, BatchZeroProbabilityConsumesNoRng) {
  // Interleaving p = 0 channels must not shift the stream feeding the
  // genuinely random channel: both circuits see identical lane patterns.
  Circuit with_zero(2), plain(2);
  with_zero.depolarize1(0, 0.0);
  with_zero.x_error(1, 0.0);
  with_zero.depolarize2(0, 1, 0.0);
  with_zero.x_error(0, 0.25);
  plain.x_error(0, 0.25);

  BatchFrameSim a(2, 4096, /*seed=*/55), b(2, 4096, /*seed=*/55);
  a.run(with_zero);
  b.run(plain);
  size_t hits = 0;
  for (size_t shot = 0; shot < 4096; ++shot) {
    ASSERT_EQ(a.x_flip(0, shot), b.x_flip(0, shot)) << "shot " << shot;
    EXPECT_FALSE(a.x_flip(1, shot)) << "shot " << shot;
    hits += a.x_flip(0, shot);
  }
  EXPECT_GT(hits, 0u);  // the p = 0.25 channel really fired
}

TEST(BoundaryChannels, BatchCertainHitFillsEveryLane) {
  // p >= 1 must terminate (no -inf geometric skip) and hit every lane.
  Circuit c(2);
  c.x_error(0, 1.0);
  c.depolarize1(1, 1.0);
  BatchFrameSim batch(2, 1000, /*seed=*/7);
  batch.run(c);
  for (size_t shot = 0; shot < batch.num_shots(); ++shot) {
    EXPECT_TRUE(batch.x_flip(0, shot)) << "shot " << shot;
    // A certain depolarization lands SOME Pauli on every lane.
    EXPECT_TRUE(batch.x_flip(1, shot) || batch.z_flip(1, shot))
        << "shot " << shot;
  }
}

TEST(BoundaryChannels, EnginesAgreeAtBoundaries) {
  // At p = 0 and p = 1 the hit pattern is deterministic, so the serial and
  // batch engines must agree shot for shot with no seed coordination.
  Circuit c(2);
  c.x_error(0, 0.0);
  c.x_error(1, 1.0);
  BatchFrameSim batch(2, 128, /*seed=*/101);
  batch.run(c);
  FrameSim frame(2, /*seed=*/202);
  frame.x_error(0, 0.0);
  frame.x_error(1, 1.0);
  for (size_t shot = 0; shot < 128; ++shot) {
    ASSERT_EQ(batch.x_flip(0, shot), frame.destructive_z_flip(0));
    ASSERT_EQ(batch.x_flip(1, shot), frame.destructive_z_flip(1));
  }
}

// Different seeds must (overwhelmingly) produce different records on a
// random-outcome circuit — guards against an RNG that ignores its seed.
TEST(CrossEngine, DifferentSeedsDiverge) {
  Circuit c(8);
  for (uint32_t q = 0; q < 8; ++q) c.h(q);
  for (uint32_t q = 0; q < 8; ++q) c.m(q);

  // 8 random bits collide with probability 2^-8 per pair; run three rounds so
  // a spurious failure is ~2^-24.
  std::vector<uint8_t> rec_a, rec_b;
  for (int round = 0; round < 3; ++round) {
    TableauSim fresh_a(8, static_cast<uint64_t>(round) * 2 + 1);
    TableauSim fresh_b(8, static_cast<uint64_t>(round) * 2 + 2);
    const auto ra = run_circuit(fresh_a, c);
    const auto rb = run_circuit(fresh_b, c);
    rec_a.insert(rec_a.end(), ra.begin(), ra.end());
    rec_b.insert(rec_b.end(), rb.begin(), rb.end());
  }
  EXPECT_NE(rec_a, rec_b);
}

// ---- Heralded erasure & biased Pauli channel boundaries ---------------------

// p = 0 channels must consume NO randomness: a sim that took a pile of
// zero-rate erase/pauli-channel calls must stay on the exact same RNG
// stream as a fresh sim with the same seed.
TEST(ErasureBoundary, ZeroRateConsumesNoRngDraws) {
  FrameSim a(4, /*seed=*/99), b(4, /*seed=*/99);
  for (int rep = 0; rep < 50; ++rep) {
    for (size_t q = 0; q < 4; ++q) {
      a.erase_error(q, 0.0);
      a.pauli_channel1(q, 0.0, 0.0, 0.0);
    }
    a.pauli_channel2(0, 1, 0.0, 1.0 / 3, 1.0 / 3);
  }
  for (size_t q = 0; q < 4; ++q) {
    a.depolarize1(q, 0.5);
    b.depolarize1(q, 0.5);
  }
  EXPECT_TRUE(a.x_frame() == b.x_frame());
  EXPECT_TRUE(a.z_frame() == b.z_frame());
  for (size_t q = 0; q < 4; ++q) EXPECT_FALSE(a.is_erased(q));

  BatchFrameSim ba(4, 128, /*seed=*/99), bb(4, 128, /*seed=*/99);
  for (int rep = 0; rep < 50; ++rep) {
    for (size_t q = 0; q < 4; ++q) {
      ba.erase_error(q, 0.0);
      ba.pauli_channel1(q, 0.0, 0.0, 0.0);
    }
    ba.pauli_channel2(0, 1, 0.0, 1.0 / 3, 1.0 / 3);
  }
  for (size_t q = 0; q < 4; ++q) {
    ba.depolarize1(q, 0.5);
    bb.depolarize1(q, 0.5);
  }
  for (size_t q = 0; q < 4; ++q) {
    for (size_t w = 0; w < ba.num_words(); ++w) {
      ASSERT_EQ(ba.x_flips(q)[w], bb.x_flips(q)[w]) << q << " " << w;
      ASSERT_EQ(ba.z_flips(q)[w], bb.z_flips(q)[w]) << q << " " << w;
      ASSERT_EQ(ba.herald_word(q)[w], 0u);
    }
  }
}

// p = 1 heralds every site in both engines, and lane masks restrict the
// batch channel exactly.
TEST(ErasureBoundary, CertainErasureHeraldsEverySite) {
  FrameSim serial(3, /*seed=*/5);
  for (size_t q = 0; q < 3; ++q) serial.erase_error(q, 1.0);
  for (size_t q = 0; q < 3; ++q) EXPECT_TRUE(serial.is_erased(q));

  BatchFrameSim batch(3, 128, /*seed=*/5);
  batch.erase_error(0, 1.0);
  for (size_t w = 0; w < batch.num_words(); ++w) {
    EXPECT_EQ(batch.herald_word(0)[w], ~uint64_t{0});
  }
  const std::vector<uint64_t> mask = {0xF0F0F0F0F0F0F0F0ull,
                                      0x0000FFFF0000FFFFull};
  ASSERT_EQ(batch.num_words(), mask.size());
  batch.erase_error(1, 1.0, mask.data());
  for (size_t w = 0; w < batch.num_words(); ++w) {
    EXPECT_EQ(batch.herald_word(1)[w], mask[w]);
  }
}

// The deterministic herald injections pin the bitplanes frame-vs-batch bit
// for bit: lane by lane, the batch plane must equal what a serial sim
// records for that lane's pattern, and reset()/clear_heralds() must erase
// them identically.
TEST(ErasureBoundary, HeraldPlanesPinnedFrameVsBatch) {
  const std::vector<uint64_t> mask = {0xDEADBEEFCAFEF00Dull,
                                      0x0123456789ABCDEFull};
  BatchFrameSim batch(2, 128, /*seed=*/7);
  ASSERT_EQ(batch.num_words(), mask.size());
  batch.mark_erased_masked(1, mask.data());
  for (size_t shot = 0; shot < batch.num_shots(); ++shot) {
    FrameSim serial(2, /*seed=*/7);
    const bool lane_hit = (mask[shot >> 6] >> (shot & 63)) & 1u;
    if (lane_hit) serial.mark_erased(1);
    ASSERT_EQ(batch.heralded(0, shot), serial.is_erased(0)) << shot;
    ASSERT_EQ(batch.heralded(1, shot), serial.is_erased(1)) << shot;
  }
  // reset() clears the herald with the frame — a fresh qubit is not erased.
  batch.reset(1);
  for (size_t w = 0; w < batch.num_words(); ++w) {
    EXPECT_EQ(batch.herald_word(1)[w], 0u);
  }
  FrameSim serial(2, /*seed=*/7);
  serial.mark_erased(1);
  serial.reset(1);
  EXPECT_FALSE(serial.is_erased(1));
  // clear_heralds() drops every plane without touching frames.
  batch.mark_erased_masked(0, mask.data());
  batch.inject_x(0);
  batch.clear_heralds();
  for (size_t w = 0; w < batch.num_words(); ++w) {
    EXPECT_EQ(batch.herald_word(0)[w], 0u);
    EXPECT_EQ(batch.x_flips(0)[w], ~uint64_t{0});
  }
}

// Stochastic erasure + biased channels replay identically from the seed in
// both engines (determinism, not cross-engine equality: the two engines own
// distinct RNG disciplines).
TEST(ErasureBoundary, SeedDeterminismAcrossEngines) {
  FrameSim a(4, /*seed=*/321), b(4, /*seed=*/321);
  for (auto* s : {&a, &b}) {
    for (int rep = 0; rep < 20; ++rep) {
      for (size_t q = 0; q < 4; ++q) {
        s->erase_error(q, 0.3);
        s->pauli_channel1(q, 0.05, 0.01, 0.2);
      }
      s->pauli_channel2(1, 2, 0.2, 0.1, 0.1);
    }
  }
  EXPECT_TRUE(a.x_frame() == b.x_frame());
  EXPECT_TRUE(a.z_frame() == b.z_frame());
  for (size_t q = 0; q < 4; ++q) EXPECT_EQ(a.is_erased(q), b.is_erased(q));

  BatchFrameSim ba(4, 256, /*seed=*/321), bb(4, 256, /*seed=*/321);
  for (auto* s : {&ba, &bb}) {
    for (int rep = 0; rep < 20; ++rep) {
      for (size_t q = 0; q < 4; ++q) {
        s->erase_error(q, 0.3);
        s->pauli_channel1(q, 0.05, 0.01, 0.2);
      }
      s->pauli_channel2(1, 2, 0.2, 0.1, 0.1);
    }
  }
  for (size_t q = 0; q < 4; ++q) {
    for (size_t w = 0; w < ba.num_words(); ++w) {
      ASSERT_EQ(ba.x_flips(q)[w], bb.x_flips(q)[w]);
      ASSERT_EQ(ba.z_flips(q)[w], bb.z_flips(q)[w]);
      ASSERT_EQ(ba.herald_word(q)[w], bb.herald_word(q)[w]);
    }
  }
}

}  // namespace
}  // namespace ftqc::sim
