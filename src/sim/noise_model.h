#pragma once

#include "sim/circuit.h"

namespace ftqc::sim {

// The stochastic error model of §6, as knobs:
//  * eps_store  — per qubit, per time step (TICK), equal X/Y/Z: applied to
//                 every qubit that rested during the step ("storage errors
//                 that afflict the resting qubits").
//  * eps_gate1  — after each 1-qubit gate, equal X/Y/Z on its target.
//  * eps_gate2  — after each 2-qubit gate, a uniform non-identity 2-qubit
//                 Pauli on its targets (the pessimistic "a faulty XOR gate
//                 introduces errors in both the source and the target").
//  * eps_meas   — measurement-outcome flip (X before M, Z before MX).
//  * eps_prep   — faulty |0> preparation (X after R / MR).
//  * p_leak     — per-gate leakage out of the computational space (§6).
//
// Errors are spatially and temporally uncorrelated, matching the paper's
// "uncorrelated errors" assumption.
struct NoiseParams {
  double eps_store = 0.0;
  double eps_gate1 = 0.0;
  double eps_gate2 = 0.0;
  double eps_meas = 0.0;
  double eps_prep = 0.0;
  double p_leak = 0.0;
  // Per-axis Pauli bias weights. (1,1,1) is the unbiased depolarizing model
  // and compiles to the exact same DEPOLARIZE1/2 ops (bit-identical RNG
  // streams); anything else emits PAULI_CHANNEL1/2 with axis probabilities
  // eps * bias_i / (bias_x + bias_y + bias_z). A Z-biased channel with
  // eta = p_z / p_x is (1, 1, 2*eta - 1) in the convention p_y = p_x.
  double bias_x = 1.0;
  double bias_y = 1.0;
  double bias_z = 1.0;
  // Heralded erasure per gate (and per prep): with this probability the
  // qubit is replaced by the maximally mixed state and a herald is
  // recorded. Unlike p_leak, every engine (batch included) supports it.
  double p_erase = 0.0;

  // The single-knob model used for the threshold estimates (Eq. 34/35):
  // every gate-type error probability set to eps_gate, storage separate.
  [[nodiscard]] static NoiseParams uniform_gate(double eps_gate,
                                                double eps_store = 0.0) {
    NoiseParams p;
    p.eps_gate1 = eps_gate;
    p.eps_gate2 = eps_gate;
    p.eps_meas = eps_gate;
    p.eps_prep = eps_gate;
    p.eps_store = eps_store;
    return p;
  }

  // Measurement-error-only model: every gate, preparation and storage step
  // is perfect and only the readout flips. Isolates the §3.4 question of how
  // much syndrome repetition buys when the syndrome itself is the unreliable
  // ingredient (bench E04).
  [[nodiscard]] static NoiseParams measurement_only(double eps_meas) {
    NoiseParams p;
    p.eps_meas = eps_meas;
    return p;
  }

  // uniform_gate with a Z-over-X bias eta = p_z / p_x (p_y = p_x): the
  // hardware-reality dephasing-dominated channel.
  [[nodiscard]] static NoiseParams biased_gate(double eps_gate, double eta,
                                               double eps_store = 0.0) {
    NoiseParams p = uniform_gate(eps_gate, eps_store);
    p.bias_x = 1.0;
    p.bias_y = 1.0;
    p.bias_z = eta;
    return p;
  }

  // uniform_gate plus heralded erasure at rate p_erase per gate location.
  [[nodiscard]] static NoiseParams with_erasure(double eps_gate,
                                                double p_erase) {
    NoiseParams p = uniform_gate(eps_gate);
    p.p_erase = p_erase;
    return p;
  }

  [[nodiscard]] bool is_biased() const {
    return !(bias_x == bias_y && bias_y == bias_z);
  }

  // Conditional axis fractions f_x + f_y + f_z = 1 of the gate channels.
  [[nodiscard]] double frac_x() const {
    return bias_x / (bias_x + bias_y + bias_z);
  }
  [[nodiscard]] double frac_y() const {
    return bias_y / (bias_x + bias_y + bias_z);
  }
  [[nodiscard]] double frac_z() const {
    return bias_z / (bias_x + bias_y + bias_z);
  }

  [[nodiscard]] bool is_noiseless() const {
    return eps_store == 0 && eps_gate1 == 0 && eps_gate2 == 0 &&
           eps_meas == 0 && eps_prep == 0 && p_leak == 0 && p_erase == 0;
  }
};

// Compiles an ideal circuit into a noisy one by inserting channel ops:
// gate noise directly after each unitary, measurement/preparation noise
// around M/R, and storage noise on the qubits that idled in each TICK layer.
[[nodiscard]] Circuit add_noise(const Circuit& ideal, const NoiseParams& params);

// Number of fault locations the model exposes in a circuit (used by the
// fault enumerator and by the analytic coefficient counting in E6).
[[nodiscard]] size_t count_fault_locations(const Circuit& noisy);

}  // namespace ftqc::sim
