#pragma once

#include <cstddef>
#include <cstdint>

namespace ftqc::threshold {

// The random-vs-systematic error comparison of §6 (first bullet): N gates
// each over-rotating by angle theta. With random signs the phases perform a
// random walk — failure probability grows ~ N·theta²/4 (linear in N, so the
// *probability* per gate eps = theta²/4 adds up). With a systematic
// (conspiring) sign the amplitude grows linearly — failure ~ sin²(N·theta/2)
// ≈ N²·theta²/4 — so meeting a fixed budget requires theta ~ 1/N, i.e.
// eps ~ 1/N²: the systematic threshold is the square of the random one.
struct CoherentErrorModel {
  double theta = 0.0;  // per-gate over-rotation angle

  // Exact failure probability after n systematic rotations of |+> about Z.
  [[nodiscard]] double systematic_failure(size_t n) const;

  // Expected failure probability after n random-sign rotations (average of
  // sin²(theta·S/2) over the ±1 random walk S); exact binomial sum.
  [[nodiscard]] double random_walk_failure(size_t n) const;

  // Small-angle approximations quoted above.
  [[nodiscard]] double systematic_failure_approx(size_t n) const;
  [[nodiscard]] double random_walk_failure_approx(size_t n) const;
};

// Monte Carlo verification of random_walk_failure via the dense simulator
// (statevector RZ rotations on |+>, measured in the X basis).
[[nodiscard]] double simulate_random_walk_failure(double theta, size_t n,
                                                  size_t shots, uint64_t seed);
[[nodiscard]] double simulate_systematic_failure(double theta, size_t n,
                                                 uint64_t seed);

}  // namespace ftqc::threshold
