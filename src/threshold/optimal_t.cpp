#include "threshold/optimal_t.h"

#include <cmath>

#include "common/check.h"

namespace ftqc::threshold {

double OptimalTAnalysis::block_error(double t, double eps) const {
  return std::pow(std::pow(t, b) * eps, t + 1.0);
}

double OptimalTAnalysis::optimal_t(double eps) const {
  return std::exp(-1.0) * std::pow(eps, -1.0 / b);
}

size_t OptimalTAnalysis::optimal_t_integer(double eps) const {
  FTQC_CHECK(eps > 0 && eps < 1, "eps must be in (0,1)");
  size_t best_t = 1;
  double best = block_error(1.0, eps);
  // The continuum optimum bounds the search window.
  const size_t hi = static_cast<size_t>(std::ceil(4 * optimal_t(eps))) + 4;
  for (size_t t = 1; t <= hi; ++t) {
    const double e = block_error(static_cast<double>(t), eps);
    if (e < best) {
      best = e;
      best_t = t;
    }
  }
  return best_t;
}

double OptimalTAnalysis::min_block_error_asymptotic(double eps) const {
  return std::exp(-std::exp(-1.0) * b * std::pow(eps, -1.0 / b));
}

double OptimalTAnalysis::min_block_error_exact(double eps) const {
  return block_error(static_cast<double>(optimal_t_integer(eps)), eps);
}

double OptimalTAnalysis::required_accuracy(double t_cycles) const {
  FTQC_CHECK(t_cycles > 1, "need more than one cycle");
  // Solve exp(-e^{-1} b eps^{-1/b}) = 1/T for eps.
  return std::pow(b / (std::exp(1.0) * std::log(t_cycles)), b);
}

}  // namespace ftqc::threshold
