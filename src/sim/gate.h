#pragma once

#include <cstdint>

namespace ftqc::sim {

// Instruction set of the circuit IR. The unitary subset (through SWAP) is
// Clifford and supported by every simulator; CCX/CCZ and the rotation gates
// are supported only by the dense state-vector simulator; the channels are
// sampled by the runners at execution time.
enum class Gate : uint8_t {
  // 1-qubit Clifford unitaries. S is the paper's phase gate P (Eq. 22);
  // H is the Hadamard rotation R (Eq. 9).
  I,
  X,
  Y,
  Z,
  H,
  S,
  S_DAG,
  // 1-qubit non-Clifford rotations (state-vector only); `arg` = angle.
  RX,
  RZ,
  // Multi-qubit unitaries.
  CX,
  CZ,
  SWAP,
  CCX,  // Toffoli (Fig. 1); state-vector only
  CCZ,  // state-vector only
  // Measurement / reset. M/MR/MX append one bit to the measurement record.
  M,    // destructive Z-basis measurement (qubit stays in the outcome state)
  MX,   // X-basis measurement
  MR,   // measure Z then reset to |0>
  R,    // reset to |0>
  // Stochastic channels; `arg` = probability.
  DEPOLARIZE1,  // X, Y or Z with prob arg/3 each (the paper's §6 model)
  DEPOLARIZE2,  // any of the 15 non-identity 2-qubit Paulis with prob arg/15
  X_ERROR,
  Y_ERROR,
  Z_ERROR,
  LEAK_ERROR,  // with prob arg, mark the qubit as leaked (§6, Fig. 15)
  // Biased Pauli channels; `arg`/`arg2`/`arg3` = (p_x, p_y, p_z). The
  // 2-qubit form draws each qubit's Pauli from weights (1, 3f_x, 3f_y,
  // 3f_z) with f = p/sum(p), conditioned on not-II — the biased
  // generalization of DEPOLARIZE2's uniform 15-way draw.
  PAULI_CHANNEL1,
  PAULI_CHANNEL2,
  // Heralded erasure: with prob arg, replace the qubit by the maximally
  // mixed state (uniform Pauli twirl on the frame) AND record a herald.
  // Unlike LEAK_ERROR, subsequent gates act normally on the fresh qubit.
  ERASE,
  // Deterministic single-qubit fault injections used by the fault enumerator.
  INJECT_X,
  INJECT_Y,
  INJECT_Z,
  // Time-step barrier: the noise model attaches storage errors per TICK.
  TICK,
};

[[nodiscard]] constexpr const char* gate_name(Gate g) {
  switch (g) {
    case Gate::I: return "I";
    case Gate::X: return "X";
    case Gate::Y: return "Y";
    case Gate::Z: return "Z";
    case Gate::H: return "H";
    case Gate::S: return "S";
    case Gate::S_DAG: return "S_DAG";
    case Gate::RX: return "RX";
    case Gate::RZ: return "RZ";
    case Gate::CX: return "CX";
    case Gate::CZ: return "CZ";
    case Gate::SWAP: return "SWAP";
    case Gate::CCX: return "CCX";
    case Gate::CCZ: return "CCZ";
    case Gate::M: return "M";
    case Gate::MX: return "MX";
    case Gate::MR: return "MR";
    case Gate::R: return "R";
    case Gate::DEPOLARIZE1: return "DEPOLARIZE1";
    case Gate::DEPOLARIZE2: return "DEPOLARIZE2";
    case Gate::X_ERROR: return "X_ERROR";
    case Gate::Y_ERROR: return "Y_ERROR";
    case Gate::Z_ERROR: return "Z_ERROR";
    case Gate::LEAK_ERROR: return "LEAK_ERROR";
    case Gate::PAULI_CHANNEL1: return "PAULI_CHANNEL1";
    case Gate::PAULI_CHANNEL2: return "PAULI_CHANNEL2";
    case Gate::ERASE: return "ERASE";
    case Gate::INJECT_X: return "INJECT_X";
    case Gate::INJECT_Y: return "INJECT_Y";
    case Gate::INJECT_Z: return "INJECT_Z";
    case Gate::TICK: return "TICK";
  }
  return "?";
}

// Number of qubit targets consumed per application.
[[nodiscard]] constexpr int gate_arity(Gate g) {
  switch (g) {
    case Gate::CX:
    case Gate::CZ:
    case Gate::SWAP:
    case Gate::DEPOLARIZE2:
    case Gate::PAULI_CHANNEL2:
      return 2;
    case Gate::CCX:
    case Gate::CCZ:
      return 3;
    case Gate::TICK:
      return 0;
    default:
      return 1;
  }
}

[[nodiscard]] constexpr bool gate_is_unitary(Gate g) {
  switch (g) {
    case Gate::I:
    case Gate::X:
    case Gate::Y:
    case Gate::Z:
    case Gate::H:
    case Gate::S:
    case Gate::S_DAG:
    case Gate::RX:
    case Gate::RZ:
    case Gate::CX:
    case Gate::CZ:
    case Gate::SWAP:
    case Gate::CCX:
    case Gate::CCZ:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] constexpr bool gate_is_channel(Gate g) {
  switch (g) {
    case Gate::DEPOLARIZE1:
    case Gate::DEPOLARIZE2:
    case Gate::X_ERROR:
    case Gate::Y_ERROR:
    case Gate::Z_ERROR:
    case Gate::LEAK_ERROR:
    case Gate::PAULI_CHANNEL1:
    case Gate::PAULI_CHANNEL2:
    case Gate::ERASE:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] constexpr bool gate_records_measurement(Gate g) {
  return g == Gate::M || g == Gate::MX || g == Gate::MR;
}

}  // namespace ftqc::sim
