#include "codes/library.h"

#include "codes/css.h"
#include "gf2/hamming.h"

namespace ftqc::codes {

using pauli::PauliString;

const StabilizerCode& steane() {
  static const StabilizerCode code = [] {
    const gf2::Hamming743 hamming;
    // Self-dual CSS construction, with the paper's transversal logicals.
    std::vector<PauliString> generators = {
        PauliString::from_string("IIIZZZZ"), PauliString::from_string("IZZIIZZ"),
        PauliString::from_string("ZIZIZIZ"), PauliString::from_string("IIIXXXX"),
        PauliString::from_string("IXXIIXX"), PauliString::from_string("XIXIXIX")};
    return StabilizerCode("Steane [[7,1,3]]", 7, std::move(generators),
                          {PauliString::from_string("XXXXXXX")},
                          {PauliString::from_string("ZZZZZZZ")});
  }();
  return code;
}

const StabilizerCode& five_qubit() {
  static const StabilizerCode code = [] {
    std::vector<PauliString> generators = {
        PauliString::from_string("XZZXI"), PauliString::from_string("IXZZX"),
        PauliString::from_string("XIXZZ"), PauliString::from_string("ZXIXZ")};
    return StabilizerCode("Five-qubit [[5,1,3]]", 5, std::move(generators),
                          {PauliString::from_string("XXXXX")},
                          {PauliString::from_string("ZZZZZ")});
  }();
  return code;
}

const StabilizerCode& shor9() {
  static const StabilizerCode code = [] {
    std::vector<PauliString> generators = {
        PauliString::from_string("ZZIIIIIII"), PauliString::from_string("IZZIIIIII"),
        PauliString::from_string("IIIZZIIII"), PauliString::from_string("IIIIZZIII"),
        PauliString::from_string("IIIIIIZZI"), PauliString::from_string("IIIIIIIZZ"),
        PauliString::from_string("XXXXXXIII"), PauliString::from_string("IIIXXXXXX")};
    // For Shor's code the transversal operators swap roles: X^⊗9 acts as the
    // logical Z (it flips the sign of each GHZ factor) and Z^⊗9 as logical X.
    return StabilizerCode("Shor [[9,1,3]]", 9, std::move(generators),
                          {PauliString::from_string("ZZZZZZZZZ")},
                          {PauliString::from_string("XXXXXXXXX")});
  }();
  return code;
}

const StabilizerCode& hamming15() {
  static const StabilizerCode code = [] {
    const auto h = gf2::hamming_check_matrix(4);
    return make_css_code("Hamming CSS [[15,7,3]]", h, h);
  }();
  return code;
}

const StabilizerCode& reed_muller15() {
  static const StabilizerCode code = [] {
    // Qubit q <-> the nonzero 4-bit vector q+1. Generator supports are the
    // evaluation vectors of the degree-1 monomials v_i (X side, weight 8)
    // and additionally the degree-2 monomials v_i·v_j (Z side, weight 4).
    std::vector<PauliString> generators;
    const auto support = [](int i, int j) {
      gf2::BitVec bits(15);
      for (size_t q = 0; q < 15; ++q) {
        const unsigned v = static_cast<unsigned>(q) + 1;
        const bool in = ((v >> i) & 1u) && ((v >> j) & 1u);
        bits.set(q, in);
      }
      return bits;
    };
    for (int i = 0; i < 4; ++i) {
      PauliString g(15);
      g.x_part() = support(i, i);
      generators.push_back(g);
    }
    for (int i = 0; i < 4; ++i) {
      PauliString g(15);
      g.z_part() = support(i, i);
      generators.push_back(g);
    }
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        PauliString g(15);
        g.z_part() = support(i, j);
        generators.push_back(g);
      }
    }
    // Logical X is the all-ones pattern (the complement map on RM
    // codewords); logical Z is any weight-3 word of the [15,11,3] Hamming
    // dual — qubits {0,1,2} = vectors {0001, 0010, 0011}.
    PauliString lx(15), lz(15);
    for (size_t q = 0; q < 15; ++q) lx.set_pauli(q, 'X');
    for (size_t q = 0; q < 3; ++q) lz.set_pauli(q, 'Z');
    return StabilizerCode("Reed-Muller [[15,1,3]]", 15, std::move(generators),
                          {lx}, {lz});
  }();
  return code;
}

}  // namespace ftqc::codes
