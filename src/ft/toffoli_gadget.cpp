#include "ft/toffoli_gadget.h"

namespace ftqc::ft {

ToffoliGadget make_bare_toffoli_gadget() {
  ToffoliGadget g;
  g.out_data = {0, 1, 2};  // a1, a2, a3
  g.cat = 3;
  g.in_data = {4, 5, 6};  // d1, d2, d3

  sim::Circuit& c = g.circuit;
  c.ensure_qubits(7);

  // --- Stage 1: prepare |A> (Eq. 23-25). -------------------------------
  // Encoded |0>'s with bitwise Hadamards -> (1/sqrt8) Σ |a,b,c> (Eq. 24).
  c.h(0);
  c.h(1);
  c.h(2);
  c.tick();
  // Fig. 12: measure Z_AB = (-1)^{ab+c} using a cat control in the Hadamard
  // basis. The (-1)^{x·ab} piece is the bitwise Toffoli onto the cat
  // (expressed here as CCZ conjugated by H on the cat); (-1)^{x·c} is a
  // two-qubit phase gate.
  c.h(g.cat);
  c.tick();
  c.ccz(g.cat, 0, 1);
  c.tick();
  c.cz(g.cat, 2);
  c.tick();
  c.h(g.cat);
  c.tick();
  const int32_t m_cat = c.m(g.cat);
  c.tick();
  // Outcome |B>: apply NOT_3 to complete the preparation (Eq. 25).
  c.x(2, m_cat);
  c.tick();

  // --- Stage 2: Eq. 27 interaction + Fig. 13 conditional fix-ups. -------
  // Three XORs and a Hadamard produce Eq. (27):
  //   |a,b,ab>|x,y,z> -> Σ_w (-1)^{wz} |a,b,ab⊕z> |x⊕a, y⊕b, w>.
  c.cx(6, 2);  // data z into the product qubit
  c.cx(0, 4);  // ancilla a into data x
  c.cx(1, 5);  // ancilla b into data y
  c.tick();
  c.h(6);
  c.tick();
  const int32_t m1 = c.m(4);
  const int32_t m2 = c.m(5);
  const int32_t m3 = c.m(6);
  c.tick();
  // Conditional fix-ups. With a1 = x⊕m1, a2 = y⊕m2 and
  // a3 = z ⊕ xy ⊕ x·m2 ⊕ y·m1 ⊕ m1·m2 after the measurements, the ordering
  // below adds exactly the surplus terms: the first XOR (a1 still unfixed)
  // contributes m2·x ⊕ m1·m2, the second (a2 already fixed) m1·y.
  c.cx(0, 2, m2);
  c.x(1, m2);
  c.tick();
  c.cx(1, 2, m1);
  c.x(0, m1);
  c.tick();
  // Phase repair for the (-1)^{w z} factor: (-1)^{m3(a3 ⊕ xy)} = (-1)^{m3 z}.
  c.z(2, m3);
  c.cz(0, 1, m3);
  c.tick();
  return g;
}

ToffoliGadget make_toffoli_consumption_gadget() {
  ToffoliGadget g;
  g.out_data = {0, 1, 2};
  g.cat = 3;  // idle here; kept so the layout matches the full gadget
  g.in_data = {4, 5, 6};

  sim::Circuit& c = g.circuit;
  c.ensure_qubits(7);
  c.cx(6, 2);
  c.cx(0, 4);
  c.cx(1, 5);
  c.tick();
  c.h(6);
  c.tick();
  c.m(4);
  c.m(5);
  c.m(6);
  c.tick();
  return g;
}

size_t encoded_gadget_gate_count(size_t block_size) {
  // Stage 1: 3 bitwise H blocks + bitwise Toffoli + bitwise CZ + 2 cat H
  // layers + cat measurement; stage 2: 3 transversal XORs + 1 bitwise H +
  // 3 block measurements + up to 6 conditional bitwise gates.
  return block_size * (3 + 1 + 1 + 2 + 1 + 3 + 1 + 3 + 6);
}

}  // namespace ftqc::ft
