#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace ftqc {

// Thrown when an engine is asked to simulate a noise channel it cannot
// express (e.g. any Batch*Recovery with p_leak > 0: leakage gates every
// word op per lane, which defeats bit-slicing). Carries enough structure
// for a driver to degrade gracefully — catch it, log `fallback`, and rerun
// the workload on the named serial engine instead of dying mid-campaign.
// Contrast FTQC_CHECK, which aborts: an unsupported channel is a caller
// configuration, not a corrupted invariant.
class UnsupportedChannel : public std::runtime_error {
 public:
  UnsupportedChannel(std::string engine, std::string channel,
                     std::string fallback)
      : std::runtime_error(engine + " does not support " + channel +
                           "; use " + fallback + " instead"),
        engine_(std::move(engine)),
        channel_(std::move(channel)),
        fallback_(std::move(fallback)) {}

  // The engine that rejected the configuration, e.g. "BatchSteaneRecovery".
  [[nodiscard]] const std::string& engine() const { return engine_; }
  // The offending channel knob, e.g. "p_leak > 0".
  [[nodiscard]] const std::string& channel() const { return channel_; }
  // The supported serial fallback, e.g. "SteaneRecovery".
  [[nodiscard]] const std::string& fallback() const { return fallback_; }

 private:
  std::string engine_;
  std::string channel_;
  std::string fallback_;
};

}  // namespace ftqc
