#pragma once

#include <cstdint>

namespace ftqc {

// xoshiro256** by Blackman & Vigna (public domain reference implementation,
// re-typed). Chosen over std::mt19937_64 for speed in the Monte Carlo hot
// loops and for trivially cheap per-thread forking via long jumps.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  uint64_t next_below(uint64_t bound) {
    if (bound <= 1) return 0;
    while (true) {
      const uint64_t r = next_u64();
      const __uint128_t m = static_cast<__uint128_t>(r) * bound;
      const auto lo = static_cast<uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  bool bernoulli(double p) { return next_double() < p; }

  // Independent stream for a worker thread: splitmix-derived reseed keyed by
  // the worker index, so OpenMP shards never share state.
  [[nodiscard]] Rng fork(uint64_t stream) const {
    Rng child(state_[0] ^ (0xA0761D6478BD642Full * (stream + 1)));
    return child;
  }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace ftqc
