#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace ftqc::sim {

// Rare-event measurement by weight-stratified importance sampling.
//
// Direct Monte Carlo starves below failure rates of ~1e-6: the §5 crossover
// claims (and the paper's doubly-exponential suppression story) live far
// below that. This module supplies the generic half of the engine — combine
// per-stratum conditional estimates under a prior, and route a shot budget
// to whatever is widest — while the gadget-specific half (runtime-
// conditioned sampling of exactly-k-fault executions with likelihood-ratio
// weights) lives in ft/fault_enumeration. The split keeps the layering: sim
// knows nothing about recovery gadgets, ft reuses the estimator for every
// gadget family.
//
// The estimator realizes
//
//   P(fail) = sum_k w_k * P(fail | stratum k)  (+ tail bias <= tail weight)
//
// where the weights are the prior probabilities of the strata — the
// binomial C(N,k) eps^k (1-eps)^(N-k) for a fixed-length path, or an
// empirically-estimated P(K = k) that the sampler pushes via set_weight()
// as it learns the gadget's realized path-length distribution — and each
// conditional P(fail | k) is a plain Monte Carlo Proportion. Because the
// conditionals are eps-INDEPENDENT, one stratum table serves every eps of a
// sweep: each eps is a "view" carrying its own weight vector, and the
// budget router spends replays on the stratum that most widens any view's
// interval.

// P(X = k) for X ~ Binomial(n, p), evaluated in log space so location
// counts of ~1e5 and priors of ~1e-12 neither overflow the binomial
// coefficient nor underflow the power terms. `n` is a double because the
// effective location count of a gadget with fault-dependent control flow is
// a calibrated mean, not an integer.
[[nodiscard]] double binomial_pmf(double n, size_t k, double p);

// One importance stratum: the sampled conditional event proportion, plus a
// "known zero" pin for strata a prior exhaustive analysis has proven can
// never fail (e.g. single faults on a verified fault-tolerant gadget).
// A known-zero stratum contributes neither mean nor interval width and the
// router never spends shots on it.
struct Stratum {
  Proportion sampled;
  bool known_zero = false;

  [[nodiscard]] double conditional_mean() const {
    return known_zero ? 0.0 : sampled.mean();
  }
  // Wilson half-width of the conditional; 1.0 (the whole unit interval)
  // while the stratum is unsampled, so unvisited strata surface as
  // maximally uncertain instead of silently "zero".
  [[nodiscard]] double conditional_halfwidth() const {
    return known_zero ? 0.0 : sampled.wilson_halfwidth();
  }
};

// Combined estimate for one view (one eps point of a sweep).
struct StratifiedEstimate {
  double mean = 0;
  // 95% half-width: root-sum-square of the per-stratum w_k * halfwidth_k
  // contributions (independent strata), plus the tail weight in full — the
  // unrepresented prior mass bounds the truncation bias with P(fail|tail)
  // <= 1, so it enters the width linearly, not in quadrature.
  double halfwidth = 1;
  double tail_weight = 0;  // prior mass beyond the last stratum
  size_t shots = 0;        // raw replays consumed across all strata

  [[nodiscard]] double relative_halfwidth() const {
    if (mean <= 0) return std::numeric_limits<double>::infinity();
    return halfwidth / mean;
  }
};

// Adaptive budget allocation over independent "arms" (strata of one
// estimator, or whole sweep points of a bench): each grant of `chunk` shots
// goes to the arm reporting the largest width. Stops when the budget is
// exhausted, every arm is at or below `target`, or no arm accepts shots.
struct BudgetArm {
  std::string label;
  // Current priority — by convention a relative 95% half-width, so arms of
  // different magnitude compete fairly. Infinity = completely unresolved.
  std::function<double()> width;
  // Spend up to n shots; returns the number actually spent (0 = refuse, the
  // router then retires the arm).
  std::function<size_t(size_t)> spend;
};

class BudgetRouter {
 public:
  void add_arm(BudgetArm arm) { arms_.push_back(std::move(arm)); }
  [[nodiscard]] size_t num_arms() const { return arms_.size(); }
  // Returns the total number of shots spent.
  size_t run(size_t budget, size_t chunk, double target);
  [[nodiscard]] const std::vector<size_t>& spent_per_arm() const {
    return spent_;
  }

 private:
  std::vector<BudgetArm> arms_;
  std::vector<size_t> spent_;
};

// One sampler grant: the conditional Proportion to merge into the stratum,
// plus the raw number of replays executed to produce it. A sampler that
// conditions by rejection (run a broader proposal, keep only the shots that
// realize exactly k faults) reports accepted trials in `sampled` but paid
// for `raw` replays; the estimator advances both its budget accounting and
// the stratum's first_shot offset by `raw`, so cost stays honest and
// per-shot seeds never repeat across chunks. Samplers that accept every
// shot simply set raw = sampled.trials.
struct StratumChunk {
  Proportion sampled;
  size_t raw = 0;
};

// Samples `num_shots` more replays of one stratum. `first_shot` is the
// stratum's cumulative RAW shot offset, so a sampler deriving per-shot
// seeds from (stratum, first_shot + i) makes the estimate independent of
// chunk boundaries — serial, chunked and parallel execution agree bit for
// bit.
using StratumSampler = std::function<StratumChunk(
    size_t stratum, size_t num_shots, size_t first_shot)>;

struct StratifiedPlan {
  size_t budget = 0;  // total raw replays across all strata
  size_t chunk = 256;
  // Stop early once EVERY view's relative half-width reaches this; 0 spends
  // the whole budget.
  double target_relative_halfwidth = 0;
};

class StratifiedEstimator {
 public:
  StratifiedEstimator(size_t num_strata, StratumSampler sampler);

  // Registers a weight vector (one entry per stratum; prior probabilities,
  // need not sum to 1) plus the unrepresented tail mass. Returns the view
  // id handed back to estimate(). Typical sweeps register one view per eps.
  size_t add_view(std::vector<double> weights, double tail_weight = 0);

  // Pins a stratum's conditional to exactly zero (prior exhaustive proof).
  void mark_known_zero(size_t stratum);

  // Replaces one view weight in place. Samplers that LEARN the prior as
  // they go (the likelihood-ratio weights of the runtime-conditioned fault
  // sampler) push refinements here between chunks; estimates and routing
  // decisions pick them up immediately.
  void set_weight(size_t view, size_t stratum, double weight) {
    views_[view].weights[stratum] = weight;
  }

  // Overrides one (view, stratum) conditional with a self-normalized
  // importance-weighted estimate. An importance sampler's conditional
  // failing fraction depends on the VIEW through its per-shot likelihood
  // weights (shots with different realized path lengths carry different
  // mass under different eps), so the shared unweighted Proportion would
  // bias the product w * P(fail|k) whenever weight and failure correlate
  // within the stratum. `halfwidth` should already account for the
  // weighting (e.g. a Wilson width at the Kish effective sample size).
  // Known-zero pins still win over an override.
  void set_conditional(size_t view, size_t stratum, double mean,
                       double halfwidth) {
    views_[view].cond_mean[stratum] = mean;
    views_[view].cond_halfwidth[stratum] = halfwidth;
  }

  // Manual drive: sample `shots` more conditional replays of one stratum.
  void add_shots(size_t stratum, size_t shots);

  // Adaptive drive over all views (see StratifiedPlan): after one warm-up
  // chunk per live stratum, each chunk goes to the stratum contributing the
  // widest relative interval. Sound for samplers with FIXED weights and
  // unweighted conditionals. A sampler that pushes set_weight /
  // set_conditional as it samples should NOT be driven this way: the
  // chunk-by-chunk feedback reads the estimates it is growing, and that
  // optional stopping biases the result low (a stratum whose interim weight
  // fluctuates low is starved and keeps its low estimate). Such samplers
  // plan grants externally — pilot first, then add_shots with a split
  // computed from the pilot alone (ft::estimate_rare_failure_sweep does).
  void run(const StratifiedPlan& plan);

  [[nodiscard]] size_t num_strata() const { return strata_.size(); }
  [[nodiscard]] size_t num_views() const { return views_.size(); }
  [[nodiscard]] const Stratum& stratum(size_t index) const {
    return strata_[index];
  }
  [[nodiscard]] size_t total_shots() const { return total_shots_; }

  [[nodiscard]] StratifiedEstimate estimate(size_t view = 0) const;

 private:
  struct View {
    std::vector<double> weights;
    double tail_weight = 0;
    // Per-stratum conditional overrides (NaN = use the shared Proportion).
    std::vector<double> cond_mean;
    std::vector<double> cond_halfwidth;
  };

  // Conditional mean / half-width of one stratum as seen by one view:
  // known-zero pin, then the view's override, then the shared Proportion.
  [[nodiscard]] double view_conditional_mean(size_t view, size_t stratum) const;
  [[nodiscard]] double view_conditional_halfwidth(size_t view,
                                                  size_t stratum) const;

  // Relative contribution of one stratum's uncertainty to one view.
  [[nodiscard]] double contribution(size_t stratum, size_t view) const;
  // max over views — the routing priority of a stratum.
  [[nodiscard]] double max_contribution(size_t stratum) const;
  [[nodiscard]] double max_view_relative_halfwidth() const;

  std::vector<Stratum> strata_;
  std::vector<View> views_;
  StratumSampler sampler_;
  std::vector<size_t> shots_per_stratum_;  // raw; doubles as first_shot offsets
  size_t total_shots_ = 0;
};

}  // namespace ftqc::sim
