// E9 (§6, "Random errors" bullet): random-phase gate errors accumulate like
// a random walk (failure ~ N eps), while systematic conspiring phases add
// coherently (failure ~ N² eps) — so the systematic threshold is roughly the
// square of the random one.
#include <cmath>
#include <cstdio>

#include "bench_harness.h"
#include "common/table.h"
#include "threshold/systematic.h"

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E09");
  using ftqc::threshold::CoherentErrorModel;
  using ftqc::threshold::simulate_random_walk_failure;
  using ftqc::threshold::simulate_systematic_failure;

  const double theta = 0.01;  // per-gate over-rotation; eps = theta^2/4
  const CoherentErrorModel model{theta};
  std::printf(
      "E9: random vs systematic phase errors (§6). Per-gate rotation theta ="
      " %.3g\n(equivalent per-gate error probability eps = theta^2/4 = %.2e).\n\n",
      theta, theta * theta / 4);

  const size_t shots = ftqc::bench::scaled(3000, 300);
  ftqc::bench::JsonResult json;
  ftqc::Table table({"N gates", "random: analytic", "random: MC",
                     "systematic: analytic", "systematic: statevector",
                     "systematic/random"});
  for (const size_t n : {100u, 400u, 1600u, 6400u}) {
    const double rw = model.random_walk_failure(n);
    const double rw_mc = simulate_random_walk_failure(theta, n, shots, 5);
    const double sys = model.systematic_failure(n);
    const double sys_sv = simulate_systematic_failure(theta, n, 7);
    table.add_row({ftqc::strfmt("%zu", n), ftqc::strfmt("%.3e", rw),
                   ftqc::strfmt("%.3e", rw_mc), ftqc::strfmt("%.3e", sys),
                   ftqc::strfmt("%.3e", sys_sv),
                   ftqc::strfmt("%.0f", sys / rw)});
    if (n == 1600u) {
      json.add("n_gates", n);
      json.add("random_walk_mc", rw_mc);
      json.add("systematic_statevector", sys_sv);
      json.add("systematic_over_random", sys / rw);
    }
  }
  table.print();
  json.add("shots", shots);
  json.write();

  std::printf(
      "\nThreshold consequence: to keep failure below a budget after N gates,"
      "\nrandom errors need eps ~ budget/N but systematic ones need\n"
      "theta ~ 1/N, i.e. eps ~ 1/N^2: if the random-error threshold is eps0,"
      "\nthe conspiring-systematic threshold is ~eps0^2 (§6).\n");
  const double eps0 = 1e-3;
  std::printf(
      "Example: eps0 = %.0e  ->  systematic threshold ~ %.0e\n", eps0,
      eps0 * eps0);
  return 0;
}
