#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ft/recovery.h"
#include "gf2/hamming.h"
#include "sim/batch_frame_sim.h"
#include "sim/noise_model.h"

namespace ftqc::ft {

// Bit-parallel SteaneRecovery: one full fault-tolerant recovery cycle
// (Fig. 9) on 64 shots per word, replayed gadget by gadget on a
// BatchFrameSim. Statistically equivalent to running `shots` independent
// SteaneRecovery instances under the same NoiseParams/RecoveryPolicy:
//
//  * the same ideal circuits (steane_circuits.h builders) drive every lane;
//  * the §6 noise hooks of ft::run_gadget (gate/prep/meas/storage) are
//    applied as per-lane random masks;
//  * per-shot control flow — syndrome repetition, the §3.3 verification fix,
//    and the final correction — becomes lane masking: gates of a
//    conditionally executed gadget are frame-linear, so lanes whose
//    ancillas carry no noise pass through it unchanged, and masking the
//    NOISE to the lanes that "really" execute the gadget reproduces the
//    serial branch exactly;
//  * Hamming decoding is bit-sliced: syndrome rows are XORs of measurement
//    record rows, and the corrected-parity logical readout is
//    parity(word) ^ (syndrome != 0), all word ops.
//
// Leakage is not representable in the bit-parallel engine; constructing with
// p_leak > 0 is an error. Use the serial SteaneRecovery for leakage studies.
class BatchSteaneRecovery {
 public:
  static constexpr uint32_t kNumQubits = 21;

  // shots is rounded up to a multiple of 64.
  BatchSteaneRecovery(const sim::NoiseParams& noise, RecoveryPolicy policy,
                      size_t shots, uint64_t seed);

  [[nodiscard]] size_t num_shots() const { return sim_.num_shots(); }
  [[nodiscard]] size_t num_words() const { return sim_.num_words(); }

  // Returns every lane to the all-clean state.
  void reset();

  // Injects a Pauli on a data qubit, every lane (error-channel input).
  void inject_data(uint32_t q, char pauli);
  // iid depolarizing channel on every data qubit, every lane.
  void apply_memory_noise(double p);

  // One full fault-tolerant recovery cycle (Fig. 9) across all lanes.
  void run_cycle();

  // Lanes (among the first `num_lanes`; SIZE_MAX = all) whose residual data
  // error defeats ideal decoding — the batch analogue of
  // SteaneRecovery::any_logical_error summed over shots.
  [[nodiscard]] uint64_t count_any_logical_error(
      size_t num_lanes = SIZE_MAX) const;
  // Lanes carrying any residual error (nonzero coset weight, X or Z side).
  [[nodiscard]] uint64_t count_residual(size_t num_lanes = SIZE_MAX) const;

  // Per-lane introspection for tests.
  [[nodiscard]] bool logical_x_error(size_t shot) const;
  [[nodiscard]] bool logical_z_error(size_t shot) const;
  [[nodiscard]] bool any_logical_error(size_t shot) const {
    return logical_x_error(shot) || logical_z_error(shot);
  }

  [[nodiscard]] sim::BatchFrameSim& frames() { return sim_; }

 private:
  // Executes an ideal gadget on all lanes, applying the §6 noise hooks
  // masked to `lane_mask` (nullptr = every lane). Returns the indices of the
  // record rows the gadget measured. The record is cleared first, so row
  // indices from earlier gadgets do not survive this call.
  std::vector<size_t> run_gadget(const sim::Circuit& circuit,
                                 std::span<const uint32_t> active_qubits,
                                 const uint64_t* lane_mask);

  void prepare_verified_zero_ancilla(const uint64_t* lane_mask);
  // Writes 3 syndrome rows (3 * num_words words) into `syndrome_rows`.
  void extract_syndrome(bool phase_type, const uint64_t* lane_mask,
                        uint64_t* syndrome_rows);
  // Applies the per-lane correction for lanes in `act_mask`, whose positions
  // are decoded from `syndrome_rows`, with the serial path's fault
  // opportunities (gate noise on the corrected qubit, storage on the rest).
  void correct(bool phase_type, const uint64_t* syndrome_rows,
               const uint64_t* act_mask);

  // OR of per-position decode masks = act_mask; also fills pos_masks
  // (7 * num_words words): lanes whose syndrome points at each position.
  void decode_positions(const uint64_t* syndrome_rows, const uint64_t* act_mask,
                        uint64_t* pos_masks) const;

  // Bit-sliced classical decode over 7 record/frame rows into `out`
  // (num_words words). logical=true computes decode_logical (corrected-word
  // parity); logical=false computes "any residual" (the word is not an
  // even-weight Hamming codeword, i.e. nonzero coset weight).
  void decode_rows(const uint64_t* const rows[7], bool logical,
                   uint64_t* out) const;
  // Shared body of count_any_logical_error / count_residual.
  uint64_t count_frames(bool logical, size_t num_lanes) const;

  sim::BatchFrameSim sim_;
  sim::NoiseParams noise_;
  RecoveryPolicy policy_;
  gf2::Hamming743 hamming_;
  size_t words_;
  std::vector<bool> touched_;  // gadget-runner scratch
};

}  // namespace ftqc::ft
