#include <gtest/gtest.h>

#include <cmath>

#include "topo/anyon_gates.h"
#include "topo/anyon_sim.h"
#include "topo/perm.h"
#include "topo/suppression.h"
#include "topo/toric_code.h"

namespace ftqc::topo {
namespace {

const A5& group() {
  static const A5 g;
  return g;
}

TEST(Perm, CycleConstructionAndComposition) {
  const Perm p = Perm::from_cycles({{0, 1, 2}});  // (123)
  EXPECT_EQ(p(0), 1);
  EXPECT_EQ(p(1), 2);
  EXPECT_EQ(p(2), 0);
  EXPECT_EQ(p(3), 3);
  EXPECT_TRUE((p * p * p).is_identity());
  EXPECT_EQ(p.to_string(), "(123)");
}

TEST(Perm, InverseAndConjugation) {
  const Perm p = Perm::from_cycles({{0, 1, 4}});
  EXPECT_TRUE((p * p.inverse()).is_identity());
  // Conjugating a cycle relabels its points by h^{-1} (with the convention
  // g^h = h^{-1} g h): (125)^(234) = (h^{-1}(1), h^{-1}(2), h^{-1}(5)) =
  // (145).
  const Perm h = Perm::from_cycles({{1, 2, 3}});
  const Perm expected = Perm::from_cycles({{0, 3, 4}});
  EXPECT_EQ(p.conjugated_by(h), expected);
}

TEST(Perm, ParityAndCycleType) {
  EXPECT_TRUE(Perm::from_cycles({{0, 1, 2}}).is_even());
  EXPECT_FALSE(Perm::from_cycles({{0, 1}}).is_even());
  EXPECT_TRUE(Perm::from_cycles({{0, 1}, {2, 3}}).is_even());
  EXPECT_EQ(Perm::from_cycles({{0, 1}, {2, 3}}).cycle_type(),
            (std::vector<uint8_t>{2, 2}));
  EXPECT_EQ(Perm::from_cycles({{0, 1, 2, 3, 4}}).cycle_type(),
            (std::vector<uint8_t>{5}));
}

TEST(A5Group, HasOrder60AndIsClosed) {
  EXPECT_EQ(group().order(), 60u);
  // Closure spot check: every pairwise product of the first few elements is
  // in the group (index_of aborts otherwise).
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 0; j < 10; ++j) {
      (void)group().index_of(group().element(i) * group().element(j));
    }
  }
}

TEST(A5Group, ConjugacyClassSizes) {
  // A5 classes: e(1), (2,2)-type (15), 3-cycles (20), two 5-cycle classes
  // (12 each).
  EXPECT_EQ(group().conjugacy_class(Perm{}).size(), 1u);
  EXPECT_EQ(group().conjugacy_class(Perm::from_cycles({{0, 1}, {2, 3}})).size(),
            15u);
  EXPECT_EQ(group().conjugacy_class(Perm::from_cycles({{0, 1, 2}})).size(), 20u);
  EXPECT_EQ(group().conjugacy_class(Perm::from_cycles({{0, 1, 2, 3, 4}})).size(),
            12u);
}

TEST(A5Group, IsNonsolvable) {
  // §7.4: A5 is the smallest nonsolvable group — its commutator subgroup is
  // all of A5.
  EXPECT_EQ(group().commutator_subgroup().size(), 60u);
}

TEST(A5Group, FiveCyclesConjugateToTheirInverses) {
  // Needed by the Barrington negation gadget.
  const Perm sigma = Perm::from_cycles({{0, 1, 2, 3, 4}});
  EXPECT_TRUE(group().conjugate_in_group(sigma, sigma.inverse()));
}

TEST(ComputationalEncoding, Eq45FluxesAreConjugateThreeCycles) {
  const Perm u0 = computational_u0();
  const Perm u1 = computational_u1();
  EXPECT_EQ(u0.cycle_type(), (std::vector<uint8_t>{3}));
  EXPECT_EQ(u1.cycle_type(), (std::vector<uint8_t>{3}));
  EXPECT_TRUE(group().conjugate_in_group(u0, u1));
  // v = (14)(35) conjugates u0 into u1 and back: the paper's NOT.
  const Perm v = not_conjugator();
  EXPECT_EQ(u0.conjugated_by(v), u1);
  EXPECT_EQ(u1.conjugated_by(v), u0);
}

TEST(AnyonSim, ExchangeImplementsEq40) {
  // |u1>|u2> -> |u2>|u2^{-1} u1 u2>.
  AnyonSim sim(group(), 5);
  const Perm a = Perm::from_cycles({{0, 1, 2}});
  const Perm b = Perm::from_cycles({{0, 1, 2, 3, 4}});
  sim.create_pair(a);
  sim.create_pair(b);
  sim.exchange(0, 1);
  EXPECT_NEAR(std::abs(sim.amplitude({b, a.conjugated_by(b)})), 1.0, 1e-12);
}

TEST(AnyonSim, PullThroughConjugatesInsideFlux) {
  // Eq. (41): the outside pair is unmodified, the inside flux conjugated.
  AnyonSim sim(group(), 6);
  const size_t target = create_computational_pair(sim, false);  // u0
  const size_t vpair = sim.create_pair(not_conjugator());
  sim.pull_through(target, vpair);
  EXPECT_NEAR(sim.flux_probability(target, computational_u1()), 1.0, 1e-12);
  EXPECT_NEAR(sim.flux_probability(vpair, not_conjugator()), 1.0, 1e-12);
}

TEST(AnyonSim, TopologicalNotIsInvolution) {
  AnyonSim sim(group(), 7);
  const size_t q = create_computational_pair(sim, false);
  apply_topological_not(sim, q);
  EXPECT_NEAR(sim.flux_probability(q, computational_u1()), 1.0, 1e-12);
  apply_topological_not(sim, q);
  EXPECT_NEAR(sim.flux_probability(q, computational_u0()), 1.0, 1e-12);
  EXPECT_FALSE(measure_computational_flux(sim, q));
}

TEST(AnyonSim, VacuumPairIsClassSuperposition) {
  AnyonSim sim(group(), 8);
  const size_t p = sim.create_vacuum_pair(computational_u0());
  // 20 three-cycles, each with probability 1/20.
  EXPECT_EQ(sim.support_size(), 20u);
  EXPECT_NEAR(sim.flux_probability(p, computational_u0()), 1.0 / 20, 1e-12);
  EXPECT_NEAR(sim.norm(), 1.0, 1e-12);
  // Flux measurement calibrates the pair (§7.4: building the reservoir).
  const Perm measured = sim.measure_flux(p);
  EXPECT_EQ(measured.cycle_type(), (std::vector<uint8_t>{3}));
  EXPECT_NEAR(sim.flux_probability(p, measured), 1.0, 1e-12);
}

TEST(AnyonSim, ChargeMeasurementCreatesSuperposition) {
  // Fig. 22: projecting a flux eigenstate onto |±>.
  AnyonSim sim(group(), 9);
  const size_t q = create_computational_pair(sim, false);
  const bool minus = measure_computational_charge(sim, q);
  // Either way the pair is now an equal superposition of u0 and u1.
  EXPECT_NEAR(sim.flux_probability(q, computational_u0()), 0.5, 1e-12);
  EXPECT_NEAR(sim.flux_probability(q, computational_u1()), 0.5, 1e-12);
  // A second interferometer read repeats the outcome (projective).
  EXPECT_EQ(measure_computational_charge(sim, q), minus);
}

TEST(AnyonSim, ChargeMeasurementStatisticsOnFluxEigenstate) {
  // <+|u0> = 1/sqrt2: outcomes split evenly over many runs.
  int minus_count = 0;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    AnyonSim sim(group(), 100 + seed);
    const size_t q = create_computational_pair(sim, false);
    minus_count += measure_computational_charge(sim, q) ? 1 : 0;
  }
  EXPECT_GT(minus_count, 15);
  EXPECT_LT(minus_count, 45);
}

TEST(AnyonSim, NotActsCoherentlyOnChargeStates) {
  // |+> is invariant under NOT; |-> picks up a global sign only. Verify via
  // interferometer outcomes being preserved by NOT.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    AnyonSim sim(group(), 200 + seed);
    const size_t q = create_computational_pair(sim, false);
    const bool charge = measure_computational_charge(sim, q);
    apply_topological_not(sim, q);
    EXPECT_EQ(measure_computational_charge(sim, q), charge);
  }
}

TEST(Barrington, CommutatorWitnessExists) {
  const auto [a, b] = find_commutator_witness(group());
  const Perm c = a.inverse() * b.inverse() * a * b;
  EXPECT_EQ(c.cycle_type(), (std::vector<uint8_t>{5}));
}

TEST(Barrington, VariableProgram) {
  const Perm sigma = Perm::from_cycles({{0, 1, 2, 3, 4}});
  const auto p = BranchingProgram::variable(0, sigma);
  EXPECT_FALSE(p.eval({false}));
  EXPECT_TRUE(p.eval({true}));
}

TEST(Barrington, Negation) {
  const Perm sigma = Perm::from_cycles({{0, 1, 2, 3, 4}});
  const auto p = BranchingProgram::negation(
      group(), BranchingProgram::variable(0, sigma));
  EXPECT_TRUE(p.eval({false}));
  EXPECT_FALSE(p.eval({true}));
}

TEST(Barrington, ConjunctionTruthTable) {
  const Perm sigma = Perm::from_cycles({{0, 1, 2, 3, 4}});
  const auto p = BranchingProgram::conjunction(
      group(), BranchingProgram::variable(0, sigma),
      BranchingProgram::variable(1, sigma));
  EXPECT_FALSE(p.eval({false, false}));
  EXPECT_FALSE(p.eval({false, true}));
  EXPECT_FALSE(p.eval({true, false}));
  EXPECT_TRUE(p.eval({true, true}));
}

TEST(Barrington, ToffoliFunctionFromComposedGadgets) {
  // c' = c XOR (a AND b) realized as a Boolean case split computed entirely
  // by conjugation programs: AND(a,b), plus negations for the XOR cases.
  const Perm sigma = Perm::from_cycles({{0, 1, 2, 3, 4}});
  const auto a_and_b = BranchingProgram::conjunction(
      group(), BranchingProgram::variable(0, sigma),
      BranchingProgram::variable(1, sigma));
  // XOR(c, f) = (c AND NOT f) OR (NOT c AND f); build OR from AND/NOT.
  const auto c_var = BranchingProgram::variable(2, sigma);
  const auto not_f = BranchingProgram::negation(group(), a_and_b);
  const auto not_c = BranchingProgram::negation(group(), c_var);
  const auto left = BranchingProgram::conjunction(group(), c_var, not_f);
  const auto right = BranchingProgram::conjunction(group(), not_c, a_and_b);
  // OR(x,y) = NOT(AND(NOT x, NOT y)).
  const auto result = BranchingProgram::negation(
      group(),
      BranchingProgram::conjunction(group(),
                                    BranchingProgram::negation(group(), left),
                                    BranchingProgram::negation(group(), right)));
  for (int in = 0; in < 8; ++in) {
    const bool a = in & 1, b = in & 2, c = in & 4;
    const bool want = c ^ (a && b);
    EXPECT_EQ(result.eval({a, b, c}), want) << "input " << in;
  }
  // The whole computation is a word of conjugation-implementable elements.
  EXPECT_GT(result.length(), 16u);
}

TEST(Barrington, AndGadgetLengthIsFourTimesInputs) {
  const Perm sigma = Perm::from_cycles({{0, 1, 2, 3, 4}});
  const auto p = BranchingProgram::conjunction(
      group(), BranchingProgram::variable(0, sigma),
      BranchingProgram::variable(1, sigma));
  EXPECT_EQ(p.length(), 4u);  // P Q P^{-1} Q^{-1} with unit-length inputs
}

TEST(ToricCode, StabilizersCommute) {
  const ToricCode code(3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      const auto star = code.star_operator(i, j);
      for (size_t x = 0; x < 3; ++x) {
        for (size_t y = 0; y < 3; ++y) {
          EXPECT_TRUE(star.commutes_with(code.plaquette_operator(x, y)));
        }
      }
    }
  }
}

TEST(ToricCode, LogicalOperatorsAnticommuteCorrectly) {
  const ToricCode code(4);
  EXPECT_FALSE(code.logical_z1().commutes_with(code.logical_x1()));
  EXPECT_FALSE(code.logical_z2().commutes_with(code.logical_x2()));
  EXPECT_TRUE(code.logical_z1().commutes_with(code.logical_x2()));
  EXPECT_TRUE(code.logical_z2().commutes_with(code.logical_x1()));
  // Logicals commute with every check.
  for (size_t x = 0; x < 4; ++x) {
    for (size_t y = 0; y < 4; ++y) {
      EXPECT_TRUE(code.logical_z1().commutes_with(code.star_operator(x, y)));
      EXPECT_TRUE(code.logical_x1().commutes_with(code.plaquette_operator(x, y)));
    }
  }
}

TEST(ToricCode, SingleXErrorCreatesFluxonPair) {
  const ToricCode code(4);
  gf2::BitVec errors(code.num_qubits());
  errors.set(code.h_edge(1, 1), true);
  const auto syndrome = code.plaquette_syndrome(errors);
  EXPECT_EQ(syndrome.popcount(), 2u);  // Fig. 17: fluxons come in pairs
}

TEST(ToricCode, DecoderClearsSyndromeAndFixesSparseErrors) {
  const ToricCode code(6);
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    gf2::BitVec errors(code.num_qubits());
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      if (rng.bernoulli(0.02)) errors.set(e, true);
    }
    const auto syndrome = code.plaquette_syndrome(errors);
    const auto correction = code.decode_plaquette_syndrome(syndrome);
    gf2::BitVec residual = errors;
    residual ^= correction;
    EXPECT_FALSE(code.plaquette_syndrome(residual).any())
        << "decoder left unmatched fluxons";
  }
}

TEST(ToricCode, LogicalFailureDropsWithLatticeSize) {
  // The "intrinsically fault tolerant" claim: below threshold, bigger tori
  // are exponentially safer.
  const double p = 0.04;
  auto failure_rate = [&](size_t l, size_t shots) {
    const ToricCode code(l);
    Rng rng(23 + l);
    size_t failures = 0;
    for (size_t s = 0; s < shots; ++s) {
      gf2::BitVec errors(code.num_qubits());
      for (size_t e = 0; e < code.num_qubits(); ++e) {
        if (rng.bernoulli(p)) errors.set(e, true);
      }
      gf2::BitVec residual = errors;
      residual ^= code.decode_plaquette_syndrome(code.plaquette_syndrome(errors));
      const auto [f1, f2] = code.logical_x_flips(residual);
      failures += (f1 || f2) ? 1 : 0;
    }
    return static_cast<double>(failures) / static_cast<double>(shots);
  };
  const double small = failure_rate(4, 2000);
  const double large = failure_rate(8, 2000);
  EXPECT_LT(large, small * 0.7);
}

TEST(ToricCode, GroundStatePreparationSatisfiesAllChecks) {
  const ToricCode code(3);
  sim::TableauSim sim(code.num_qubits(), 31);
  code.prepare_ground_state(sim);
  for (size_t x = 0; x < 3; ++x) {
    for (size_t y = 0; y < 3; ++y) {
      bool sign = true;
      EXPECT_TRUE(sim.stabilizes(code.star_operator(x, y), &sign));
      EXPECT_FALSE(sign);
      EXPECT_TRUE(sim.stabilizes(code.plaquette_operator(x, y), &sign));
      EXPECT_FALSE(sign);
    }
  }
}

TEST(ToricCode, AharonovBohmPhaseAroundFluxon) {
  // Fig. 16: a Z loop (transporting an electric charge) encircling one
  // magnetic fluxon measures -1; encircling none measures +1.
  const ToricCode code(3);
  sim::TableauSim sim(code.num_qubits(), 37);
  code.prepare_ground_state(sim);
  // The Z loop around plaquette (1,1) is exactly that plaquette operator;
  // before any error it reads +1.
  const auto loop = code.plaquette_operator(1, 1);
  auto value = sim.peek_pauli(loop);
  ASSERT_TRUE(value.has_value());
  EXPECT_FALSE(*value);
  // Create a fluxon pair with an X on an edge of the (1,1) plaquette.
  sim.apply_x(code.h_edge(1, 1));
  value = sim.peek_pauli(loop);
  ASSERT_TRUE(value.has_value());
  EXPECT_TRUE(*value) << "encircled fluxon must flip the loop's sign";
  // A distant loop still reads +1 (outcome bit 0): the fluxon pair created
  // by X on h(1,1) lives on plaquettes (1,1) and (1,0); loop (2,2) encloses
  // neither.
  auto far = sim.peek_pauli(code.plaquette_operator(2, 2));
  ASSERT_TRUE(far.has_value());
  EXPECT_FALSE(*far);
}

TEST(Suppression, RatesDecayExponentially) {
  const TopologicalMemoryModel model{1.0, 1.0, 1.0};
  // e^{-mL} in separation at T = 0.
  EXPECT_NEAR(model.error_rate(5, 0) / model.error_rate(4, 0), std::exp(-1.0),
              1e-9);
  // e^{-Δ/T} dominates at short separation... at large separation the
  // thermal term is the whole rate.
  const double r1 = model.error_rate(100, 0.5);
  const double r2 = model.error_rate(100, 0.25);
  EXPECT_NEAR(r1 / r2, std::exp(-2.0 + 4.0), 1e-6);  // e^{-2}/e^{-4}
}

TEST(Suppression, PoissonSamplingMatchesSurvival) {
  const TopologicalMemoryModel model{1.0, 1.0, 1.0};
  Rng rng(41);
  const double sep = 3.0, temp = 0.4, time = 5.0;
  const double survival = model.survival_probability(sep, temp, time);
  size_t survived = 0;
  const size_t shots = 20000;
  for (size_t s = 0; s < shots; ++s) {
    survived += model.sample_error_events(sep, temp, time, rng) == 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(survived) / shots, survival, 0.01);
}

TEST(Suppression, DesignHelpersInvertTheModel) {
  const TopologicalMemoryModel model{2.0, 1.5, 1.0};
  const double sep = model.separation_for_target(1e-9);
  EXPECT_NEAR(model.error_rate(sep, 0), 1e-9, 1e-12);
  const double temp = model.temperature_for_target(1e-9);
  EXPECT_NEAR(std::exp(-model.gap / temp), 1e-9, 1e-12);
}

}  // namespace
}  // namespace ftqc::topo
