#include "topo/anyon_gates.h"

#include "common/check.h"

namespace ftqc::topo {

Perm computational_u0() { return Perm::from_cycles({{0, 1, 4}}); }   // (125)
Perm computational_u1() { return Perm::from_cycles({{1, 2, 3}}); }   // (234)
Perm not_conjugator() { return Perm::from_cycles({{0, 3}, {2, 4}}); }  // (14)(35)

void apply_topological_not(AnyonSim& sim, size_t pair) {
  // Pulling the computational pair through a calibrated |v, v^{-1}> pair
  // conjugates its flux by v, swapping u0 and u1 (Fig. 21). The calibrated
  // pair is unmodified (trivial total flux passes through) and returns to
  // the reservoir; conjugate_by_constant models exactly that.
  sim.conjugate_by_constant(pair, not_conjugator());
}

size_t create_computational_pair(AnyonSim& sim, bool value) {
  return sim.create_pair(value ? computational_u1() : computational_u0());
}

bool measure_computational_flux(AnyonSim& sim, size_t pair) {
  const Perm flux = sim.measure_flux(pair);
  if (flux == computational_u1()) return true;
  FTQC_CHECK(flux == computational_u0(),
             "pair left the computational subspace");
  return false;
}

bool measure_computational_charge(AnyonSim& sim, size_t pair) {
  return sim.measure_charge_pm(pair, computational_u0(), computational_u1());
}

Perm BranchingProgram::eval_group(const std::vector<bool>& inputs) const {
  Perm acc;
  for (const BpInstruction& inst : instructions_) {
    FTQC_CHECK(inst.variable < inputs.size(), "missing program input");
    acc = acc * (inputs[inst.variable] ? inst.if_one : inst.if_zero);
  }
  return acc;
}

bool BranchingProgram::eval(const std::vector<bool>& inputs) const {
  const Perm g = eval_group(inputs);
  if (g == sigma_) return true;
  FTQC_CHECK(g.is_identity(), "program output outside {e, sigma}");
  return false;
}

BranchingProgram BranchingProgram::variable(size_t var, const Perm& sigma) {
  return BranchingProgram({BpInstruction{var, sigma, Perm{}}}, sigma);
}

BranchingProgram BranchingProgram::retargeted(const A5& group,
                                              const Perm& tau) const {
  // Find h with h^{-1} sigma h = tau and conjugate every instruction: the
  // product telescope keeps the word length unchanged (Barrington's trick).
  for (const Perm& h : group.elements()) {
    if (sigma_.conjugated_by(h) == tau) {
      std::vector<BpInstruction> out;
      out.reserve(instructions_.size());
      for (const BpInstruction& inst : instructions_) {
        out.push_back(BpInstruction{inst.variable, inst.if_one.conjugated_by(h),
                                    inst.if_zero.conjugated_by(h)});
      }
      return BranchingProgram(std::move(out), tau);
    }
  }
  FTQC_CHECK(false, "retarget failed: " + sigma_.to_string() +
                        " not conjugate to " + tau.to_string() + " in A5");
  return *this;
}

BranchingProgram BranchingProgram::inverted() const {
  std::vector<BpInstruction> out;
  out.reserve(instructions_.size());
  for (auto it = instructions_.rbegin(); it != instructions_.rend(); ++it) {
    out.push_back(
        BpInstruction{it->variable, it->if_one.inverse(), it->if_zero.inverse()});
  }
  return BranchingProgram(std::move(out), sigma_.inverse());
}

BranchingProgram BranchingProgram::negation(const A5& group,
                                            const BranchingProgram& p) {
  // g -> g·sigma^{-1} maps {e, sigma} to {sigma^{-1}, e}: the function is
  // negated with output sigma^{-1}; retarget back to sigma (5-cycles are
  // inversion-conjugate in A5 via (15)(24)-type elements).
  std::vector<BpInstruction> out = p.instructions_;
  out.push_back(BpInstruction{0, p.sigma_.inverse(), p.sigma_.inverse()});
  BranchingProgram negated(std::move(out), p.sigma_.inverse());
  return negated.retargeted(group, p.sigma_);
}

BranchingProgram BranchingProgram::conjunction(const A5& group,
                                               const BranchingProgram& p,
                                               const BranchingProgram& q) {
  // Find 5-cycles a ~ sigma_p, b ~ sigma_q with [a,b] ~ sigma_p; then
  // P_a^{-1} Q_b^{-1} P_a Q_b evaluates to [a,b] iff both functions are 1
  // and to e otherwise.
  for (const Perm& a : group.elements()) {
    if (a.cycle_type() != std::vector<uint8_t>{5}) continue;
    if (!group.conjugate_in_group(p.sigma_, a)) continue;
    for (const Perm& b : group.elements()) {
      if (b.cycle_type() != std::vector<uint8_t>{5}) continue;
      if (!group.conjugate_in_group(q.sigma_, b)) continue;
      const Perm c = a.inverse() * b.inverse() * a * b;
      if (c.cycle_type() != std::vector<uint8_t>{5}) continue;
      if (!group.conjugate_in_group(c, p.sigma_)) continue;

      const BranchingProgram pa = p.retargeted(group, a);
      const BranchingProgram qb = q.retargeted(group, b);
      std::vector<BpInstruction> word;
      const auto append = [&word](const BranchingProgram& prog) {
        word.insert(word.end(), prog.instructions_.begin(),
                    prog.instructions_.end());
      };
      append(pa.inverted());
      append(qb.inverted());
      append(pa);
      append(qb);
      BranchingProgram conj(std::move(word), c);
      return conj.retargeted(group, p.sigma_);
    }
  }
  FTQC_CHECK(false, "no commutator witness found in A5");
  return p;
}

std::pair<Perm, Perm> find_commutator_witness(const A5& group) {
  for (const Perm& a : group.elements()) {
    if (a.cycle_type() != std::vector<uint8_t>{5}) continue;
    for (const Perm& b : group.elements()) {
      if (b.cycle_type() != std::vector<uint8_t>{5}) continue;
      const Perm c = a.inverse() * b.inverse() * a * b;
      if (c.cycle_type() == std::vector<uint8_t>{5}) return {a, b};
    }
  }
  FTQC_CHECK(false, "A5 must contain a 5-cycle commutator witness");
  return {Perm{}, Perm{}};
}

}  // namespace ftqc::topo
