#include "ft/generic_recovery.h"

#include <algorithm>

#include "common/check.h"
#include "ft/gadget_runner.h"
#include "ft/steane_circuits.h"

namespace ftqc::ft {

using pauli::PauliString;

void append_controlled_pauli(sim::Circuit& circuit, uint32_t control,
                             uint32_t target, char pauli) {
  switch (pauli) {
    case 'X':
      circuit.cx(control, target);
      break;
    case 'Z':
      circuit.cz(control, target);
      break;
    case 'Y':
      // CY = (I ⊗ S) CX (I ⊗ S†).
      circuit.s_dag(target);
      circuit.cx(control, target);
      circuit.s(target);
      break;
    default:
      FTQC_CHECK(false, "controlled-Pauli expects X, Y or Z");
  }
}

GenericShorRecovery::GenericShorRecovery(const codes::StabilizerCode& code,
                                         const sim::NoiseParams& noise,
                                         RecoveryPolicy policy, uint64_t seed)
    : code_(code),
      decoder_(code),
      frame_(0, seed),  // resized below
      noise_(noise),
      policy_(policy),
      stochastic_(noise),
      injector_(&stochastic_) {
  max_weight_ = 0;
  for (const auto& g : code.generators()) {
    max_weight_ = std::max(max_weight_, g.weight());
  }
  const auto n = static_cast<uint32_t>(code.n());
  for (uint32_t i = 0; i < max_weight_; ++i) {
    cat_.push_back(n + i);
  }
  check_ = n + static_cast<uint32_t>(max_weight_);
  frame_ = sim::FrameSim(check_ + 1, seed);
  for (uint32_t q = 0; q < check_ + 1; ++q) all_qubits_.push_back(q);
}

void GenericShorRecovery::reset() {
  frame_.clear();
  cats_discarded_ = 0;
}

void GenericShorRecovery::set_injector(NoiseInjector* injector) {
  injector_ = injector != nullptr ? injector : &stochastic_;
}

void GenericShorRecovery::inject_data(uint32_t q, char pauli) {
  FTQC_CHECK(q < code_.n(), "data qubit index out of range");
  switch (pauli) {
    case 'X': frame_.inject_x(q); break;
    case 'Y': frame_.inject_y(q); break;
    case 'Z': frame_.inject_z(q); break;
    default: FTQC_CHECK(false, "inject_data expects X, Y or Z");
  }
}

void GenericShorRecovery::apply_memory_noise(double p) {
  for (uint32_t q = 0; q < code_.n(); ++q) frame_.depolarize1(q, p);
}

void GenericShorRecovery::prepare_verified_cat(size_t width) {
  const std::span<const uint32_t> cat(cat_.data(), width);
  const sim::Circuit prep = cat_prep_with_check(cat, check_, false);
  for (int attempt = 0; attempt < policy_.max_cat_attempts; ++attempt) {
    for (uint32_t q : cat) frame_.reset(q);
    frame_.reset(check_);
    const auto record = run_gadget(frame_, prep, *injector_, all_qubits_);
    // As in ShorRecovery: a heralded cat qubit fails verification outright.
    bool heralded = false;
    if (policy_.herald_reinit) {
      for (uint32_t q : cat) heralded = heralded || frame_.is_erased(q);
    }
    const bool failed = (policy_.verify_ancilla && record[0] != 0) || heralded;
    if (!failed) return;
    ++cats_discarded_;
  }
}

bool GenericShorRecovery::measure_generator(const PauliString& generator) {
  const size_t width = generator.weight();
  prepare_verified_cat(width);

  sim::Circuit gadget;
  size_t a = 0;
  for (size_t q = 0; q < code_.n(); ++q) {
    const char p = generator.pauli_at(q);
    if (p == 'I') continue;
    append_controlled_pauli(gadget, cat_[a], static_cast<uint32_t>(q), p);
    gadget.tick();
    ++a;
  }
  for (size_t i = 0; i < width; ++i) gadget.mx(cat_[i]);
  gadget.tick();

  const auto flips = run_gadget(frame_, gadget, *injector_, all_qubits_);
  bool parity = false;
  for (uint8_t f : flips) parity ^= (f != 0);
  for (size_t i = 0; i < width; ++i) frame_.reset(cat_[i]);
  return parity;
}

gf2::BitVec GenericShorRecovery::extract_syndrome() {
  gf2::BitVec syndrome(code_.num_generators());
  for (size_t g = 0; g < code_.num_generators(); ++g) {
    syndrome.set(g, measure_generator(code_.generators()[g]));
  }
  return syndrome;
}

void GenericShorRecovery::run_cycle() {
  gf2::BitVec syndrome = extract_syndrome();
  if (!syndrome.any()) return;
  if (policy_.repeat_nontrivial_syndrome) {
    const gf2::BitVec again = extract_syndrome();
    if (!(again == syndrome)) return;  // conflicting: defer (§3.4)
  }
  const PauliString correction = decoder_.decode(syndrome);
  sim::Circuit fix;
  for (size_t q = 0; q < code_.n(); ++q) {
    switch (correction.pauli_at(q)) {
      case 'X': fix.x(static_cast<uint32_t>(q)); break;
      case 'Y': fix.y(static_cast<uint32_t>(q)); break;
      case 'Z': fix.z(static_cast<uint32_t>(q)); break;
      default: break;
    }
  }
  fix.tick();
  std::vector<uint32_t> data_only;
  for (uint32_t q = 0; q < code_.n(); ++q) data_only.push_back(q);
  run_gadget(frame_, fix, *injector_, data_only);
  // The correction shifts the reference (the noiseless run never corrects).
  PauliString embedded(frame_.num_qubits());
  for (size_t q = 0; q < code_.n(); ++q) {
    embedded.set_pauli(q, correction.pauli_at(q));
  }
  frame_.inject(embedded);
}

PauliString GenericShorRecovery::residual() const {
  PauliString r(code_.n());
  for (size_t q = 0; q < code_.n(); ++q) {
    r.set_x(q, frame_.x_frame().get(q));
    r.set_z(q, frame_.z_frame().get(q));
  }
  return r;
}

bool GenericShorRecovery::any_logical_error() const {
  return decoder_.residual_effect(residual()).any();
}

}  // namespace ftqc::ft
