#include "universal/flag_recovery.h"

#include "common/check.h"
#include "ft/gadget_runner.h"

namespace ftqc::universal {

using pauli::PauliString;

FlagRecovery::FlagRecovery(const codes::StabilizerCode& code,
                           const sim::NoiseParams& noise,
                           ft::RecoveryPolicy policy, uint64_t seed)
    : code_(code),
      table_(code),
      decoder_(code),
      frame_(code.n() + 2, seed),
      noise_(noise),
      policy_(policy),
      stochastic_(noise),
      injector_(&stochastic_),
      ancilla_(static_cast<uint32_t>(code.n())),
      flag_(static_cast<uint32_t>(code.n()) + 1) {
  for (uint32_t q = 0; q < flag_ + 1; ++q) all_qubits_.push_back(q);
  for (uint32_t q = 0; q < ancilla_ + 1; ++q) noflag_qubits_.push_back(q);
  for (uint32_t q = 0; q < code.n(); ++q) data_only_.push_back(q);
  for (size_t g = 0; g < code.num_generators(); ++g) {
    const auto& order = table_.order(g);
    flagged_gadgets_.push_back(flag_extraction_circuit(
        code.generators()[g], order, ancilla_, flag_, /*flagged=*/true));
    unflagged_gadgets_.push_back(flag_extraction_circuit(
        code.generators()[g], order, ancilla_, flag_, /*flagged=*/false));
  }
}

void FlagRecovery::reset() {
  frame_.clear();
  flags_raised_ = 0;
}

void FlagRecovery::set_injector(ft::NoiseInjector* injector) {
  injector_ = injector != nullptr ? injector : &stochastic_;
}

void FlagRecovery::inject_data(uint32_t q, char pauli) {
  FTQC_CHECK(q < code_.n(), "data qubit index out of range");
  switch (pauli) {
    case 'X': frame_.inject_x(q); break;
    case 'Y': frame_.inject_y(q); break;
    case 'Z': frame_.inject_z(q); break;
    default: FTQC_CHECK(false, "inject_data expects X, Y or Z");
  }
}

void FlagRecovery::apply_memory_noise(double p) {
  for (uint32_t q = 0; q < code_.n(); ++q) frame_.depolarize1(q, p);
}

bool FlagRecovery::measure_generator(size_t g, bool flagged, bool* flag_fired) {
  const sim::Circuit& gadget =
      flagged ? flagged_gadgets_[g] : unflagged_gadgets_[g];
  const auto& active = flagged ? all_qubits_ : noflag_qubits_;
  const auto flips = ft::run_gadget(frame_, gadget, *injector_, active);
  if (flagged) {
    FTQC_CHECK(flips.size() == 2, "flagged comb reads ancilla + flag");
    *flag_fired = flips[1] != 0;
  } else {
    FTQC_CHECK(flips.size() == 1, "unflagged comb reads the ancilla");
  }
  frame_.reset(ancilla_);
  frame_.reset(flag_);
  return flips[0] != 0;
}

gf2::BitVec FlagRecovery::extract_unflagged() {
  gf2::BitVec syndrome(code_.num_generators());
  for (size_t g = 0; g < code_.num_generators(); ++g) {
    syndrome.set(g, measure_generator(g, /*flagged=*/false, nullptr));
  }
  return syndrome;
}

void FlagRecovery::apply_correction(const PauliString& correction) {
  if (correction.is_identity()) return;
  sim::Circuit fix;
  for (size_t q = 0; q < code_.n(); ++q) {
    switch (correction.pauli_at(q)) {
      case 'X': fix.x(static_cast<uint32_t>(q)); break;
      case 'Y': fix.y(static_cast<uint32_t>(q)); break;
      case 'Z': fix.z(static_cast<uint32_t>(q)); break;
      default: break;
    }
  }
  fix.tick();
  ft::run_gadget(frame_, fix, *injector_, data_only_);
  // The correction shifts the reference (the noiseless run never corrects).
  PauliString embedded(frame_.num_qubits());
  for (size_t q = 0; q < code_.n(); ++q) {
    embedded.set_pauli(q, correction.pauli_at(q));
  }
  frame_.inject(embedded);
}

void FlagRecovery::run_cycle() {
  const size_t num_gen = code_.num_generators();
  gf2::BitVec syn1(num_gen);
  size_t first_flagged = num_gen;
  for (size_t g = 0; g < num_gen; ++g) {
    bool fired = false;
    syn1.set(g, measure_generator(g, /*flagged=*/true, &fired));
    if (fired) {
      ++flags_raised_;
      if (first_flagged == num_gen) first_flagged = g;
    }
  }
  if (first_flagged < num_gen) {
    // A flag fired: under a single fault the follow-up round is clean, and
    // the flag table of the FIRST fired generator names the hook uniquely.
    const gf2::BitVec syn2 = extract_unflagged();
    const PauliString* flagged = table_.decode(first_flagged, syn2);
    apply_correction(flagged != nullptr ? *flagged : decoder_.decode(syn2));
    return;
  }
  if (!syn1.any()) return;
  if (policy_.repeat_nontrivial_syndrome) {
    const gf2::BitVec again = extract_unflagged();
    if (!(again == syn1)) return;  // conflicting: defer (§3.4)
  }
  apply_correction(decoder_.decode(syn1));
}

PauliString FlagRecovery::residual() const {
  PauliString r(code_.n());
  for (size_t q = 0; q < code_.n(); ++q) {
    r.set_x(q, frame_.x_frame().get(q));
    r.set_z(q, frame_.z_frame().get(q));
  }
  return r;
}

bool FlagRecovery::any_logical_error() const {
  return decoder_.residual_effect(residual()).any();
}

}  // namespace ftqc::universal
