#pragma once

#include "decode/matching.h"

namespace ftqc::decode {

// Exact minimum-weight perfect matching for ANY even defect count: the
// primal-dual blossom algorithm (Edmonds 1965) with odd-set contraction,
// O(n³) time and O(n²) memory. This removes the 16-defect ceiling of
// MwpmMatching's subset-DP — large-L / high-p / many-round space-time
// instances get a true global optimum instead of the union-find clustering
// heuristic, which is what closes the measured threshold gap between the
// clustered matcher (~0.097) and optimal matching (~0.103).
//
// Internals (see blossom.cpp): the minimization is run as maximum-weight
// matching on the complement weights w' = w_max + 1 - w (all positive, so on
// a complete graph the maximum-weight matching is perfect and minimizes the
// original cost). Dual variables stay half-integral by doubling edge weights
// inside the slack arithmetic; odd alternating cycles contract into blossom
// pseudo-vertices that expand lazily when their dual hits zero.
//
// The metric must be symmetric (distance(a, b) == distance(b, a)); it is
// evaluated exactly once per unordered defect pair.
class BlossomMatching final : public MatchingStrategy {
 public:
  [[nodiscard]] const char* name() const override { return "blossom"; }
  [[nodiscard]] std::vector<Match> match(
      size_t num_defects, const DistanceFn& distance) const override;
};

}  // namespace ftqc::decode
