#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace ftqc::gf2 {

// Dynamic bit vector over GF(2), packed 64 bits per word. This is the
// fundamental container for Pauli X/Z parts, parity-check rows, syndromes and
// Pauli frames; the word-level operations are the hot path of every
// simulator in the library.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(size_t n_bits) : n_bits_(n_bits), words_((n_bits + 63) / 64, 0) {}

  [[nodiscard]] static BitVec from_string(const std::string& bits) {
    BitVec v(bits.size());
    for (size_t i = 0; i < bits.size(); ++i) {
      FTQC_CHECK(bits[i] == '0' || bits[i] == '1', "BitVec string must be 0/1");
      if (bits[i] == '1') v.set(i, true);
    }
    return v;
  }

  [[nodiscard]] size_t size() const { return n_bits_; }
  [[nodiscard]] size_t num_words() const { return words_.size(); }
  [[nodiscard]] bool empty() const { return n_bits_ == 0; }

  [[nodiscard]] bool get(size_t i) const {
    FTQC_DCHECK(i < n_bits_, "bit index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(size_t i, bool value) {
    FTQC_DCHECK(i < n_bits_, "bit index out of range");
    const uint64_t mask = uint64_t{1} << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  void flip(size_t i) {
    FTQC_DCHECK(i < n_bits_, "bit index out of range");
    words_[i >> 6] ^= uint64_t{1} << (i & 63);
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  void resize(size_t n_bits) {
    n_bits_ = n_bits;
    words_.resize((n_bits + 63) / 64, 0);
    mask_tail();
  }

  BitVec& operator^=(const BitVec& other) {
    FTQC_DCHECK(n_bits_ == other.n_bits_, "size mismatch in xor");
    for (size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
    return *this;
  }

  BitVec& operator&=(const BitVec& other) {
    FTQC_DCHECK(n_bits_ == other.n_bits_, "size mismatch in and");
    for (size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
    return *this;
  }

  BitVec& operator|=(const BitVec& other) {
    FTQC_DCHECK(n_bits_ == other.n_bits_, "size mismatch in or");
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
    return *this;
  }

  [[nodiscard]] friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }
  [[nodiscard]] friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  [[nodiscard]] friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }

  [[nodiscard]] bool operator==(const BitVec& other) const {
    return n_bits_ == other.n_bits_ && words_ == other.words_;
  }

  // Hamming weight.
  [[nodiscard]] size_t popcount() const {
    size_t total = 0;
    for (uint64_t w : words_) total += static_cast<size_t>(__builtin_popcountll(w));
    return total;
  }

  [[nodiscard]] bool any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  // Parity of the AND with another vector: the GF(2) inner product.
  [[nodiscard]] bool dot(const BitVec& other) const {
    FTQC_DCHECK(n_bits_ == other.n_bits_, "size mismatch in dot");
    uint64_t acc = 0;
    for (size_t w = 0; w < words_.size(); ++w) acc ^= words_[w] & other.words_[w];
    return (__builtin_popcountll(acc) & 1) != 0;
  }

  [[nodiscard]] bool parity() const { return (popcount() & 1) != 0; }

  // Index of the lowest set bit, or size() if none.
  [[nodiscard]] size_t first_set() const { return next_set(0); }

  // Index of the lowest set bit at or after `start`, or size() if none. With
  // first_set() this streams a sparse syndrome's defect sites word-at-a-time:
  //   for (size_t s = v.first_set(); s < v.size(); s = v.next_set(s + 1))
  [[nodiscard]] size_t next_set(size_t start) const {
    if (start >= n_bits_) return n_bits_;
    size_t w = start >> 6;
    uint64_t word = words_[w] & (~uint64_t{0} << (start & 63));
    while (word == 0) {
      if (++w == words_.size()) return n_bits_;
      word = words_[w];
    }
    return (w << 6) + static_cast<size_t>(__builtin_ctzll(word));
  }

  [[nodiscard]] std::string to_string() const {
    std::string s(n_bits_, '0');
    for (size_t i = 0; i < n_bits_; ++i) {
      if (get(i)) s[i] = '1';
    }
    return s;
  }

  [[nodiscard]] uint64_t word(size_t w) const { return words_[w]; }
  void set_word(size_t w, uint64_t value) {
    words_[w] = value;
    if (w + 1 == words_.size()) mask_tail();
  }

  // Converts to an integer index (requires <= 64 bits); used by the dense
  // simulators and lookup decoders.
  [[nodiscard]] uint64_t to_u64() const {
    FTQC_CHECK(n_bits_ <= 64, "BitVec too wide for u64 conversion");
    return words_.empty() ? 0 : words_[0];
  }

 private:
  void mask_tail() {
    const size_t tail = n_bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  size_t n_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace ftqc::gf2
