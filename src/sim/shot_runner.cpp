#include "sim/shot_runner.h"

namespace ftqc::sim {

const char* shot_engine_name(ShotEngine engine) {
  switch (engine) {
    case ShotEngine::kExact: return "exact";
    case ShotEngine::kFrame: return "frame";
    case ShotEngine::kBatch: return "batch";
  }
  return "?";
}

std::optional<ShotEngine> parse_shot_engine(std::string_view name) {
  if (name == "exact") return ShotEngine::kExact;
  if (name == "frame") return ShotEngine::kFrame;
  if (name == "batch") return ShotEngine::kBatch;
  return std::nullopt;
}

}  // namespace ftqc::sim
