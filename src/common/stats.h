#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace ftqc {

// Half-width of the 95% Wilson interval at proportion `p` over `n` trials.
// `n` is a double so importance-weighted samples can report their Kish
// effective sample size (sum w)^2 / (sum w^2), which is fractional; n <= 0
// means "nothing measured" and returns the whole unit interval.
[[nodiscard]] inline double wilson_halfwidth_at(double p, double n) {
  if (n <= 0) return 1.0;
  constexpr double z = 1.959963984540054;  // 97.5th normal percentile
  const double denom = 1.0 + z * z / n;
  return (z / denom) * std::sqrt(p * (1 - p) / n + z * z / (4 * n * n));
}

// Binomial proportion estimate with a Wilson-score interval. Threshold
// experiments report logical failure rates; the interval lets benches flag
// statistically meaningless comparisons.
struct Proportion {
  uint64_t successes = 0;
  uint64_t trials = 0;

  // A zero-trial Proportion is NOT a measured zero: mean() returns 0.0 for
  // both "no failures in n trials" and "never ran", so fit loops must gate
  // on resolved() before treating a point as data (the E14/E18 sweeps do).
  [[nodiscard]] bool resolved() const { return trials > 0; }

  [[nodiscard]] double mean() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) / static_cast<double>(trials);
  }

  // Half-width of the 95% Wilson interval around the Wilson midpoint.
  [[nodiscard]] double wilson_halfwidth() const {
    return wilson_halfwidth_at(mean(), static_cast<double>(trials));
  }

  [[nodiscard]] double wilson_center() const {
    if (trials == 0) return 0.5;
    constexpr double z = 1.959963984540054;
    const double n = static_cast<double>(trials);
    const double p = mean();
    return (p + z * z / (2 * n)) / (1.0 + z * z / n);
  }

  // Wilson half-width in units of the mean — the "is this point resolved
  // enough to fit" figure the rare-event benches report as *_relerr.
  // Infinite when the mean is zero (including the zero-trial case).
  [[nodiscard]] double relative_halfwidth() const {
    const double p = mean();
    if (p <= 0) return std::numeric_limits<double>::infinity();
    return wilson_halfwidth() / p;
  }
};

// Result of extrapolating a ratio curve to its unit crossing. `valid` means
// a crossing was fitted at all; `extrapolated` means the fitted crossing
// lies OUTSIDE [x_min, x_max], the sampled range of usable points — i.e. the
// curve never actually straddled ratio = 1 and the number is a log-log
// extrapolation, not a measurement. Benches surface the flag next to every
// crossover_* field so trend tracking can tell the two apart.
struct UnitCrossing {
  double x = 0;
  bool valid = false;
  bool extrapolated = true;
  double x_min = 0;  // smallest / largest x that entered the fit
  double x_max = 0;
};

// Log-log least-squares extrapolation of a failure-ratio curve to ratio = 1:
// the threshold benches (E14, E18) fit ln(ratio) against ln(x) over the
// points where both curves resolved (ratio > 0) and solve for the x at which
// the bigger code stops helping. Invalid when fewer than two points are
// usable or the fitted slope is non-positive (no crossing in range).
[[nodiscard]] inline UnitCrossing loglog_unit_crossing_ex(
    const std::vector<double>& xs, const std::vector<double>& ratios) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  UnitCrossing crossing;
  size_t n = 0;
  for (size_t i = 0; i < xs.size() && i < ratios.size(); ++i) {
    if (ratios[i] <= 0 || xs[i] <= 0) continue;
    const double x = std::log(xs[i]);
    const double y = std::log(ratios[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    if (n == 0) {
      crossing.x_min = crossing.x_max = xs[i];
    } else {
      crossing.x_min = std::min(crossing.x_min, xs[i]);
      crossing.x_max = std::max(crossing.x_max, xs[i]);
    }
    ++n;
  }
  if (n < 2) return crossing;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0) return crossing;
  const double slope = (static_cast<double>(n) * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / static_cast<double>(n);
  if (slope <= 0) return crossing;
  crossing.x = std::exp(-intercept / slope);
  crossing.valid = true;
  crossing.extrapolated =
      crossing.x < crossing.x_min || crossing.x > crossing.x_max;
  return crossing;
}

// Historical scalar form: the crossing, or 0 when none was fitted. Callers
// that care whether the value was measured or extrapolated use the _ex form.
[[nodiscard]] inline double loglog_unit_crossing(
    const std::vector<double>& xs, const std::vector<double>& ratios) {
  const UnitCrossing crossing = loglog_unit_crossing_ex(xs, ratios);
  return crossing.valid ? crossing.x : 0.0;
}

}  // namespace ftqc
