#include "classical/multiplexing.h"

#include "common/check.h"

namespace ftqc::classical {

MultiplexedBundle::MultiplexedBundle(size_t width, bool value, uint64_t seed)
    : wires_(width, value ? 1 : 0), intended_(value), rng_(seed) {
  FTQC_CHECK(width >= 3, "bundle needs at least three wires");
}

double MultiplexedBundle::error_fraction() const {
  size_t wrong = 0;
  for (uint8_t w : wires_) wrong += (w != (intended_ ? 1 : 0));
  return static_cast<double>(wrong) / static_cast<double>(wires_.size());
}

bool MultiplexedBundle::majority_value() const {
  size_t ones = 0;
  for (uint8_t w : wires_) ones += w;
  return 2 * ones > wires_.size();
}

void MultiplexedBundle::corrupt(double fraction_probability) {
  for (auto& w : wires_) {
    if (rng_.bernoulli(fraction_probability)) w ^= 1;
  }
}

void MultiplexedBundle::restore_step(double eps) {
  std::vector<uint8_t> next(wires_.size());
  for (auto& out : next) {
    uint8_t votes = 0;
    for (int k = 0; k < 3; ++k) {
      votes += wires_[rng_.next_below(wires_.size())];
    }
    out = votes >= 2 ? 1 : 0;
    if (rng_.bernoulli(eps)) out ^= 1;
  }
  wires_ = std::move(next);
}

void MultiplexedBundle::nand_with(const MultiplexedBundle& other, double eps) {
  FTQC_CHECK(other.wires_.size() == wires_.size(), "bundle width mismatch");
  // Random cross-wiring (von Neumann's permutation "U"): pair wire i with a
  // random wire of the other bundle.
  for (size_t i = 0; i < wires_.size(); ++i) {
    const uint8_t a = wires_[i];
    const uint8_t b = other.wires_[rng_.next_below(other.wires_.size())];
    uint8_t out = static_cast<uint8_t>(!(a && b));
    if (rng_.bernoulli(eps)) out ^= 1;
    wires_[i] = out;
  }
  intended_ = !(intended_ && other.intended_);
}

double restoration_map(double f, double eps) {
  const double majority_wrong = 3 * f * f * (1 - f) + f * f * f;
  return eps + (1 - 2 * eps) * majority_wrong;
}

double stable_error_fraction(double eps) {
  // Iterate from f = eps; convergence to a point below 1/2 means a stable
  // fixed point exists.
  double f = eps;
  for (int iter = 0; iter < 10000; ++iter) {
    const double next = restoration_map(f, eps);
    if (next > 0.49) return -1.0;
    if (std::abs(next - f) < 1e-14) return next;
    f = next;
  }
  return f < 0.49 ? f : -1.0;
}

double multiplexing_threshold() {
  double lo = 0.0, hi = 0.5;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (stable_error_fraction(mid) >= 0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace ftqc::classical
