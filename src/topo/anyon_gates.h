#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "topo/anyon_sim.h"
#include "topo/perm.h"

namespace ftqc::topo {

// The computational encoding of §7.4, Eq. (45): qubit basis states are flux
// pairs carrying the three-cycles u0 = (125) and u1 = (234) (1-based cycle
// notation), which share one moved point and are conjugate in A5.
[[nodiscard]] Perm computational_u0();
[[nodiscard]] Perm computational_u1();
// v = (14)(35): pulling a computational pair through a |v, v^{-1}> pair
// swaps u0 and u1 — the topological NOT gate (Fig. 21).
[[nodiscard]] Perm not_conjugator();

// Applies the NOT to a computational pair via a calibrated v-pair.
void apply_topological_not(AnyonSim& sim, size_t pair);

// Creates a computational pair in |x>.
size_t create_computational_pair(AnyonSim& sim, bool value);

// Measures a computational pair in the flux (Z) basis; true = |1>.
[[nodiscard]] bool measure_computational_flux(AnyonSim& sim, size_t pair);

// Measures in the |±> (X) basis via the charge interferometer (Fig. 22);
// true = |->.
[[nodiscard]] bool measure_computational_charge(AnyonSim& sim, size_t pair);

// --- Universal classical computation by conjugation (§7.4 / Barrington) ---
//
// The paper grounds universality in the nonsolvability of A5, citing
// Barrington's theorem (ref. 66): width-5 branching programs over a
// nonsolvable group compute all of NC¹. A program is a word of instructions,
// each contributing one of two fixed group elements depending on one input
// bit; the program "outputs" a designated 5-cycle sigma when the function is
// 1 and the identity when it is 0. AND is realized by the group commutator —
// exactly the "computation by conjugation" the paper's Toffoli relies on.
// (The specific 16-pull-through Toffoli of Ogburn-Preskill was never
// published; see DESIGN.md.)
struct BpInstruction {
  size_t variable = 0;
  Perm if_one;
  Perm if_zero;
};

class BranchingProgram {
 public:
  BranchingProgram(std::vector<BpInstruction> instructions, Perm sigma)
      : instructions_(std::move(instructions)), sigma_(sigma) {}

  // The group element the word multiplies out to on the given inputs.
  [[nodiscard]] Perm eval_group(const std::vector<bool>& inputs) const;
  // The Boolean value: requires eval_group to be sigma or identity.
  [[nodiscard]] bool eval(const std::vector<bool>& inputs) const;

  [[nodiscard]] const Perm& sigma() const { return sigma_; }
  [[nodiscard]] size_t length() const { return instructions_.size(); }
  [[nodiscard]] const std::vector<BpInstruction>& instructions() const {
    return instructions_;
  }

  // sigma-program reading a single variable.
  [[nodiscard]] static BranchingProgram variable(size_t var, const Perm& sigma);
  // Boolean combinators (Barrington's constructions).
  [[nodiscard]] static BranchingProgram negation(const A5& group,
                                                 const BranchingProgram& p);
  [[nodiscard]] static BranchingProgram conjunction(const A5& group,
                                                    const BranchingProgram& p,
                                                    const BranchingProgram& q);

 private:
  // Program computing the same function but outputting tau instead of sigma
  // (conjugation of every instruction); tau must be conjugate to sigma.
  [[nodiscard]] BranchingProgram retargeted(const A5& group, const Perm& tau) const;
  [[nodiscard]] BranchingProgram inverted() const;

  std::vector<BpInstruction> instructions_;
  Perm sigma_;
};

// Finds 5-cycles (a, b) whose commutator [a,b] = a^{-1} b^{-1} a b is again
// a 5-cycle — the witness of nonsolvability that powers the AND gadget.
[[nodiscard]] std::pair<Perm, Perm> find_commutator_witness(const A5& group);

}  // namespace ftqc::topo
