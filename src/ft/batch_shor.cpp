#include "ft/batch_shor.h"

#include <algorithm>
#include <array>
#include <map>

#include "common/check.h"
#include "common/errors.h"
#include "ft/generic_recovery.h"
#include "ft/steane_circuits.h"
#include "sim/simd.h"

namespace ftqc::ft {

namespace {

constexpr std::array<uint32_t, 7> kData = {0, 1, 2, 3, 4, 5, 6};
constexpr std::array<uint32_t, 4> kCat = {7, 8, 9, 10};
constexpr uint32_t kCheck = 11;
constexpr std::array<uint32_t, 12> kAll = {0, 1, 2, 3, 4, 5,
                                           6, 7, 8, 9, 10, 11};

// Number of frame qubits a generic Shor driver needs for `code`.
size_t generic_register_size(const codes::StabilizerCode& code) {
  size_t max_weight = 0;
  for (const auto& g : code.generators()) {
    max_weight = std::max(max_weight, g.weight());
  }
  return code.n() + max_weight + 1;  // data + cat + check
}

}  // namespace

BatchCatRetry::BatchCatRetry(sim::BatchFrameSim& sim) : sim_(sim) {}

uint64_t BatchCatRetry::prepare(BatchGadgetRunner& gadgets,
                                const sim::Circuit& prep,
                                std::span<const uint32_t> cat,
                                std::span<const uint32_t> active_qubits,
                                const RecoveryPolicy& policy,
                                const uint64_t* active) {
  const size_t words = sim_.num_words();
  const bool herald_check =
      policy.herald_reinit && gadgets.noise().p_erase > 0;
  need_.assign(words, ~uint64_t{0});
  if (active != nullptr) std::copy_n(active, words, need_.begin());
  passed_any_.assign(words, 0);
  failed_.assign(words, 0);
  parked_.assign(2 * cat.size() * words, 0);
  uint64_t discarded = 0;

  for (int attempt = 0; attempt < policy.max_cat_attempts; ++attempt) {
    if (!batch_any_lane(need_.data(), words)) break;
    // The prep's leading R gates reset cat+check on EVERY lane, which is
    // exactly what makes whole-word replay safe: passed lanes are parked,
    // inactive lanes are scrubbed clean so the unitaries act trivially.
    const auto rows = gadgets.run(prep, active_qubits, need_.data());
    FTQC_CHECK(rows.size() == 1,
               "cat prep must measure exactly the check qubit");
    if (!policy.verify_ancilla && !herald_check) {
      // §3.3 disabled: the first attempt always passes; frames are already
      // in place, so no parking round-trip is needed.
      need_.assign(words, 0);
      break;
    }
    // Reference check outcome is 0 (the cat bits agree); a flip means the
    // verification failed and the cat is discarded (§3.3). A heralded
    // erasure on a cat qubit is a failure the check bit cannot see — the
    // qubit is maximally mixed — so the herald joins the discard decision.
    if (policy.verify_ancilla) {
      const uint64_t* flip = sim_.record().row(rows[0]);
      std::copy_n(flip, words, failed_.begin());
    } else {
      std::fill_n(failed_.begin(), words, 0);
    }
    if (herald_check) {
      for (uint32_t q : cat) {
        sim::simd::or_into(failed_.data(), sim_.herald_word(q), words);
      }
    }
    sim::simd::and_into(failed_.data(), need_.data(), words);
    discarded += batch_count_lanes(failed_.data(), words, sim_.num_shots());
    // passed_now = need & ~failed, register-wide; scratch_ holds it until
    // the parking blends below are done.
    scratch_.resize(words);
    sim::simd::andnot(scratch_.data(), need_.data(), failed_.data(), words);
    std::copy_n(failed_.begin(), words, need_.begin());
    sim::simd::or_into(passed_any_.data(), scratch_.data(), words);
    if (batch_any_lane(scratch_.data(), words)) {
      // Park the just-passed lanes' cat frames: later attempts will clobber
      // the sim's copies.
      for (size_t c = 0; c < cat.size(); ++c) {
        uint64_t* px = &parked_[2 * c * words];
        uint64_t* pz = &parked_[(2 * c + 1) * words];
        sim::simd::blend_into(px, sim_.x_flips(cat[c]), scratch_.data(),
                              words);
        sim::simd::blend_into(pz, sim_.z_flips(cat[c]), scratch_.data(),
                              words);
      }
    }
  }
  if (batch_any_lane(need_.data(), words)) {
    // Retry budget exhausted: the serial path uses the last cat unverified;
    // these lanes keep their last-attempt frames AND are surfaced in the
    // abort mask so downstream consumers can postselect them out.
    sim_.discard_lanes(need_.data());
  }
  // Restore the parked frames: XOR-inject the difference between what the
  // last attempt left behind and what each passed lane actually prepared.
  scratch_.assign(words, 0);
  for (size_t c = 0; c < cat.size(); ++c) {
    const uint64_t* px = &parked_[2 * c * words];
    const uint64_t* pz = &parked_[(2 * c + 1) * words];
    sim::simd::xor_and(scratch_.data(), sim_.x_flips(cat[c]), px,
                       passed_any_.data(), words);
    sim_.inject_x_masked(cat[c], scratch_.data());
    sim::simd::xor_and(scratch_.data(), sim_.z_flips(cat[c]), pz,
                       passed_any_.data(), words);
    sim_.inject_z_masked(cat[c], scratch_.data());
  }
  return discarded;
}

// --- BatchShorRecovery ------------------------------------------------------

BatchShorRecovery::BatchShorRecovery(const sim::NoiseParams& noise,
                                     RecoveryPolicy policy, size_t shots,
                                     uint64_t seed)
    : sim_(kNumQubits, shots, seed),
      gadgets_(sim_, noise),
      retry_(sim_),
      noise_(noise),
      policy_(policy),
      words_(sim_.num_words()) {
  if (noise.p_leak > 0) {
    throw UnsupportedChannel("BatchShorRecovery", "p_leak > 0",
                             "ShorRecovery");
  }
}

void BatchShorRecovery::reset() {
  sim_.clear();
  cats_discarded_ = 0;
}

void BatchShorRecovery::inject_data(uint32_t q, char pauli) {
  FTQC_CHECK(q < 7, "data qubit index out of range");
  switch (pauli) {
    case 'X': sim_.inject_x(q); break;
    case 'Y': sim_.inject_y(q); break;
    case 'Z': sim_.inject_z(q); break;
    default: FTQC_CHECK(false, "inject_data expects X, Y or Z");
  }
}

void BatchShorRecovery::apply_memory_noise(double p) {
  for (uint32_t q : kData) sim_.depolarize1(q, p);
}

void BatchShorRecovery::measure_syndrome_bit(size_t row, bool x_type,
                                             const uint64_t* active,
                                             uint64_t* out) {
  // Compiled once; same builders as the serial driver.
  static const std::array<sim::Circuit, 2> kCatPrep = {
      cat_prep_with_check(kCat, kCheck, /*final_hadamards=*/false),
      cat_prep_with_check(kCat, kCheck, /*final_hadamards=*/true)};
  static const std::array<std::array<sim::Circuit, 3>, 2> kSyndromeBit = [] {
    const gf2::Hamming743 hamming;
    std::array<std::array<sim::Circuit, 3>, 2> gadgets;
    for (const bool x_t : {false, true}) {
      for (size_t r = 0; r < 3; ++r) {
        gadgets[x_t][r] = shor_syndrome_bit(
            kData, kCat, hamming.check_matrix().row(r), x_t);
      }
    }
    return gadgets;
  }();

  cats_discarded_ += retry_.prepare(gadgets_, kCatPrep[!x_type], kCat, kAll,
                                    policy_, active);
  const auto rows = gadgets_.run(kSyndromeBit[x_type][row], kAll, active);
  FTQC_CHECK(rows.size() == 4, "Shor syndrome bit reads the 4 cat qubits");
  std::fill_n(out, words_, 0);
  for (const size_t r : rows) {
    sim::simd::xor_into(out, sim_.record().row(r), words_);
  }
}

void BatchShorRecovery::extract_syndrome(bool phase_type,
                                         const uint64_t* active,
                                         uint64_t* syndrome_rows) {
  // Bit-flip errors are diagnosed by the Z-type generators (measured with
  // Shor-state ancillas); phase errors by the X-type generators.
  for (size_t row = 0; row < 3; ++row) {
    measure_syndrome_bit(row, /*x_type=*/phase_type, active,
                         syndrome_rows + row * words_);
  }
}

void BatchShorRecovery::run_cycle() {
  for (const bool phase_type : {false, true}) {
    run_batch_repeat_policy(
        3, words_, policy_.repeat_nontrivial_syndrome, /*active=*/nullptr,
        [&](const uint64_t* mask, uint64_t* out) {
          extract_syndrome(phase_type, mask, out);
        },
        [&](const uint64_t* syn, const uint64_t* act) {
          batch_correct_data_block(sim_, noise_, phase_type, kData, syn, act);
        });
  }
}

uint64_t BatchShorRecovery::count_any_logical_error(size_t num_lanes) const {
  const uint64_t* x_rows[7];
  const uint64_t* z_rows[7];
  for (size_t i = 0; i < 7; ++i) {
    x_rows[i] = sim_.x_flips(kData[i]);
    z_rows[i] = sim_.z_flips(kData[i]);
  }
  std::vector<uint64_t> lx(words_), lz(words_);
  batch_decode_rows(hamming_, x_rows, /*logical=*/true, lx.data(), words_);
  batch_decode_rows(hamming_, z_rows, /*logical=*/true, lz.data(), words_);
  sim::simd::or_into(lx.data(), lz.data(), words_);
  return batch_count_lanes(lx.data(), words_,
                           std::min(num_lanes, sim_.num_shots()));
}

uint64_t BatchShorRecovery::count_retry_exhausted() const {
  return batch_count_lanes(sim_.abort_mask(), words_, sim_.num_shots());
}

bool BatchShorRecovery::logical_x_error(size_t shot) const {
  gf2::BitVec word(7);
  for (size_t q = 0; q < 7; ++q) word.set(q, sim_.x_flip(kData[q], shot));
  return hamming_.decode_logical(word);
}

bool BatchShorRecovery::logical_z_error(size_t shot) const {
  gf2::BitVec word(7);
  for (size_t q = 0; q < 7; ++q) word.set(q, sim_.z_flip(kData[q], shot));
  return hamming_.decode_logical(word);
}

// --- BatchGenericShorRecovery -----------------------------------------------

BatchGenericShorRecovery::BatchGenericShorRecovery(
    const codes::StabilizerCode& code, const sim::NoiseParams& noise,
    RecoveryPolicy policy, size_t shots, uint64_t seed)
    : code_(code),
      decoder_(code),
      sim_(generic_register_size(code), shots, seed),
      gadgets_(sim_, noise),
      retry_(sim_),
      noise_(noise),
      policy_(policy),
      words_(sim_.num_words()) {
  if (noise.p_leak > 0) {
    throw UnsupportedChannel("BatchGenericShorRecovery", "p_leak > 0",
                             "GenericShorRecovery");
  }
  max_weight_ = 0;
  for (const auto& g : code.generators()) {
    max_weight_ = std::max(max_weight_, g.weight());
  }
  const auto n = static_cast<uint32_t>(code.n());
  for (uint32_t i = 0; i < max_weight_; ++i) cat_.push_back(n + i);
  check_ = n + static_cast<uint32_t>(max_weight_);
  for (uint32_t q = 0; q < check_ + 1; ++q) all_qubits_.push_back(q);

  // Per-generator circuits, compiled once per driver: the cat prep sized to
  // the generator weight and the controlled-Pauli comb of the serial
  // measure_generator.
  for (const auto& generator : code.generators()) {
    const size_t width = generator.weight();
    const std::span<const uint32_t> cat(cat_.data(), width);
    cat_preps_.push_back(cat_prep_with_check(cat, check_, false));
    sim::Circuit gadget;
    size_t a = 0;
    for (size_t q = 0; q < code.n(); ++q) {
      const char p = generator.pauli_at(q);
      if (p == 'I') continue;
      append_controlled_pauli(gadget, cat_[a], static_cast<uint32_t>(q), p);
      gadget.tick();
      ++a;
    }
    for (size_t i = 0; i < width; ++i) gadget.mx(cat_[i]);
    gadget.tick();
    gen_gadgets_.push_back(std::move(gadget));
  }
}

void BatchGenericShorRecovery::reset() {
  sim_.clear();
  cats_discarded_ = 0;
}

void BatchGenericShorRecovery::inject_data(uint32_t q, char pauli) {
  FTQC_CHECK(q < code_.n(), "data qubit index out of range");
  switch (pauli) {
    case 'X': sim_.inject_x(q); break;
    case 'Y': sim_.inject_y(q); break;
    case 'Z': sim_.inject_z(q); break;
    default: FTQC_CHECK(false, "inject_data expects X, Y or Z");
  }
}

void BatchGenericShorRecovery::apply_memory_noise(double p) {
  for (uint32_t q = 0; q < code_.n(); ++q) sim_.depolarize1(q, p);
}

void BatchGenericShorRecovery::measure_generator(size_t g,
                                                 const uint64_t* active,
                                                 uint64_t* out) {
  const size_t width = code_.generators()[g].weight();
  const std::span<const uint32_t> cat(cat_.data(), width);
  cats_discarded_ += retry_.prepare(gadgets_, cat_preps_[g], cat, all_qubits_,
                                    policy_, active);
  const auto rows = gadgets_.run(gen_gadgets_[g], all_qubits_, active);
  FTQC_CHECK(rows.size() == width, "generator readout width mismatch");
  std::fill_n(out, words_, 0);
  for (const size_t r : rows) {
    sim::simd::xor_into(out, sim_.record().row(r), words_);
  }
  for (size_t i = 0; i < width; ++i) sim_.reset(cat_[i]);
}

void BatchGenericShorRecovery::extract_syndrome(const uint64_t* active,
                                                uint64_t* syndrome_rows) {
  for (size_t g = 0; g < code_.num_generators(); ++g) {
    measure_generator(g, active, syndrome_rows + g * words_);
  }
}

void BatchGenericShorRecovery::correct(const uint64_t* syndrome_rows,
                                       const uint64_t* act_mask) {
  const size_t num_gen = code_.num_generators();
  FTQC_CHECK(num_gen <= 64, "syndrome gather packs into one word");
  // Gather the distinct syndrome values among the acting lanes. Acting
  // lanes are sparse below threshold, so per-lane bit reads are cheap; each
  // distinct value is decoded exactly once.
  std::map<uint64_t, std::vector<uint64_t>> groups;
  for (size_t w = 0; w < words_; ++w) {
    uint64_t lanes = act_mask[w];
    while (lanes != 0) {
      const int lane = __builtin_ctzll(lanes);
      lanes &= lanes - 1;
      uint64_t value = 0;
      for (size_t g = 0; g < num_gen; ++g) {
        value |= ((syndrome_rows[g * words_ + w] >> lane) & 1u) << g;
      }
      auto [it, inserted] = groups.try_emplace(value);
      if (inserted) it->second.assign(words_, 0);
      it->second[w] |= uint64_t{1} << lane;
    }
  }
  for (const auto& [value, mask] : groups) {
    gf2::BitVec syndrome(num_gen);
    for (size_t g = 0; g < num_gen; ++g) {
      syndrome.set(g, (value >> g) & 1u);
    }
    const pauli::PauliString correction = decoder_.decode(syndrome);
    // The serial fix is a one-layer circuit over the data block run through
    // run_gadget: gate noise on each corrected qubit, storage on the rest,
    // then the frame shift (the noiseless run never corrects).
    for (size_t q = 0; q < code_.n(); ++q) {
      if (correction.pauli_at(q) != 'I') {
        batch_on_gate1(sim_, noise_, static_cast<uint32_t>(q), mask.data());
      }
    }
    for (size_t q = 0; q < code_.n(); ++q) {
      if (correction.pauli_at(q) == 'I') {
        batch_on_storage(sim_, noise_, static_cast<uint32_t>(q), mask.data());
      }
    }
    for (size_t q = 0; q < code_.n(); ++q) {
      switch (correction.pauli_at(q)) {
        case 'X': sim_.inject_x_masked(q, mask.data()); break;
        case 'Y': sim_.inject_y_masked(q, mask.data()); break;
        case 'Z': sim_.inject_z_masked(q, mask.data()); break;
        default: break;
      }
    }
  }
}

void BatchGenericShorRecovery::run_cycle() {
  run_batch_repeat_policy(
      code_.num_generators(), words_, policy_.repeat_nontrivial_syndrome,
      /*active=*/nullptr,
      [&](const uint64_t* mask, uint64_t* out) { extract_syndrome(mask, out); },
      [&](const uint64_t* syn, const uint64_t* act) { correct(syn, act); });
}

pauli::PauliString BatchGenericShorRecovery::residual(size_t shot) const {
  pauli::PauliString r(code_.n());
  for (size_t q = 0; q < code_.n(); ++q) {
    r.set_x(q, sim_.x_flip(q, shot));
    r.set_z(q, sim_.z_flip(q, shot));
  }
  return r;
}

bool BatchGenericShorRecovery::any_logical_error(size_t shot) const {
  return decoder_.residual_effect(residual(shot)).any();
}

uint64_t BatchGenericShorRecovery::count_any_logical_error(
    size_t num_lanes) const {
  const size_t lanes = std::min(num_lanes, sim_.num_shots());
  uint64_t count = 0;
  for (size_t shot = 0; shot < lanes; ++shot) {
    count += any_logical_error(shot) ? 1 : 0;
  }
  return count;
}

}  // namespace ftqc::ft
